// Package collect implements the Fetch&Add-based coordination objects of
// the paper's Section 3: SimCollect (a single-writer collect object with
// step complexity 1 for update and ⌈nd/b⌉ for collect), SimActSet (an
// active set over one bit per process), the linearizable single-word
// snapshot obtained when all components fit in one Fetch&Add word, and the
// Announce array of single-writer registers that P-Sim substitutes for the
// collect object in practice (§4).
package collect

import (
	"fmt"

	"repro/internal/xatomic"
)

// SimCollect is the paper's collect object: n components of d bits each,
// packed into ⌈nd/64⌉ Fetch&Add words (chunks never straddle words). Process
// i updates its component with ONE Fetch&Add — it adds the signed difference
// between the new and the previous value, shifted to its chunk; because the
// chunk always holds the writer's current value, the addition can neither
// carry nor borrow across chunk boundaries. Collect reads each word once.
//
// When n*d ≤ 64 the whole object is one word, every collect is an atomic
// snapshot, and the object is a linearizable single-writer snapshot
// (Theorem 3.1's b ≥ nd case); Snapshot() exposes that.
type SimCollect struct {
	n, d      int
	perWord   int // chunks per 64-bit word
	words     *xatomic.SharedBits
	chunkMask uint64
}

// NewSimCollect returns a collect object with n components of d bits each.
// d must be in [1, 64].
func NewSimCollect(n, d int) *SimCollect {
	if n < 1 {
		panic("collect: n must be >= 1")
	}
	if d < 1 || d > 64 {
		panic("collect: d must be in [1,64]")
	}
	perWord := 64 / d
	nwords := (n + perWord - 1) / perWord
	var mask uint64
	if d == 64 {
		mask = ^uint64(0)
	} else {
		mask = (uint64(1) << uint(d)) - 1
	}
	return &SimCollect{
		n: n, d: d, perWord: perWord,
		words:     xatomic.NewSharedBits(nwords * 64),
		chunkMask: mask,
	}
}

// N returns the number of components.
func (c *SimCollect) N() int { return c.n }

// D returns the width of each component in bits.
func (c *SimCollect) D() int { return c.d }

// Words returns the number of Fetch&Add words backing the object — the
// paper's ⌈nd/b⌉, and therefore the step complexity of collect.
func (c *SimCollect) Words() int { return c.words.Words() }

// Single reports whether the object fits in one word, in which case collect
// is an atomic snapshot (linearizable).
func (c *SimCollect) Single() bool { return c.Words() == 1 }

func (c *SimCollect) position(i int) (word int, shift uint) {
	return i / c.perWord, uint((i % c.perWord) * c.d)
}

// Updater is process i's single-writer handle. It remembers the previously
// written value (the paper's prev local variable) so each update is exactly
// one Fetch&Add.
type Updater struct {
	c     *SimCollect
	word  int
	shift uint
	prev  uint64
}

// Updater returns the handle for component i, which must be used by a single
// goroutine. The component starts at 0.
func (c *SimCollect) Updater(i int) *Updater {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("collect: component %d out of range [0,%d)", i, c.n))
	}
	w, s := c.position(i)
	return &Updater{c: c, word: w, shift: s}
}

// Update stores v (truncated to d bits) into the component with a single
// Fetch&Add of the signed difference. The difference is taken over the full
// word (two's complement) and then shifted to the chunk: because the chunk
// always holds the writer's previous value, the addition changes exactly the
// chunk — a positive difference cannot carry out (the result is < 2^d) and a
// negative one cannot borrow past the chunk (the chunk holds at least the
// subtracted amount).
func (u *Updater) Update(v uint64) {
	v &= u.c.chunkMask
	delta := (v - u.prev) << u.shift // full-word signed difference, shifted
	if delta != 0 {
		u.c.words.AddWord(u.word, delta)
	}
	u.prev = v
}

// Last returns the value this updater last wrote.
func (u *Updater) Last() uint64 { return u.prev }

// Collect reads every backing word once and returns the component values.
// It satisfies the collect regularity condition of §2 (not necessarily
// linearizable when Words() > 1).
func (c *SimCollect) Collect() []uint64 {
	out := make([]uint64, c.n)
	c.CollectInto(out)
	return out
}

// CollectInto is Collect without allocation; len(dst) must be ≥ n.
func (c *SimCollect) CollectInto(dst []uint64) {
	nw := c.Words()
	for w := 0; w < nw; w++ {
		word := c.words.LoadWord(w)
		base := w * c.perWord
		for j := 0; j < c.perWord; j++ {
			i := base + j
			if i >= c.n {
				break
			}
			dst[i] = (word >> uint(j*c.d)) & c.chunkMask
		}
	}
}

// Snapshot performs a linearizable scan. It panics unless the object fits in
// a single word (b ≥ nd), the condition under which the paper's SimCollect
// doubles as a single-writer snapshot.
func (c *SimCollect) Snapshot() []uint64 {
	if !c.Single() {
		panic("collect: Snapshot requires n*d <= 64 (single-word object)")
	}
	return c.Collect()
}
