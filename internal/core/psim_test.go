package core

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/xatomic"
)

// faaPSim builds a fetch-and-add object: Apply returns the previous value.
func faaPSim(n int, opts ...PSimOption[uint64]) *PSim[uint64, uint64, uint64] {
	return NewPSim(n, uint64(0), func(st *uint64, _ int, arg uint64) uint64 {
		prev := *st
		*st = prev + arg
		return prev
	}, opts...)
}

func TestPSimSequentialGenericState(t *testing.T) {
	type state struct {
		hi, lo uint64
	}
	u := NewPSim(2, state{}, func(st *state, pid int, arg uint64) uint64 {
		st.lo += arg
		st.hi += uint64(pid)
		return st.lo
	})
	if got := u.Apply(1, 10); got != 10 {
		t.Fatalf("Apply = %d", got)
	}
	if got := u.Apply(0, 5); got != 15 {
		t.Fatalf("Apply = %d", got)
	}
	if st := u.Read(); st.lo != 15 || st.hi != 1 {
		t.Fatalf("state = %+v", st)
	}
}

func TestPSimCloneOptionDeepCopies(t *testing.T) {
	// Slice state: without a deep copy, combining rounds would alias the
	// published slice and mutate history.
	u := NewPSim(4, []uint64{0, 0}, func(st *[]uint64, _ int, arg uint64) uint64 {
		(*st)[0] += arg
		(*st)[1]++
		return (*st)[0]
	}, WithClone[[]uint64](func(s []uint64) []uint64 {
		return append([]uint64(nil), s...)
	}))
	const n, per = 4, 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	st := u.Read()
	if st[0] != n*per || st[1] != n*per {
		t.Fatalf("state = %v, want [%d %d]", st, n*per, n*per)
	}
}

// TestPSimResponsesArePermutation: concurrent add(1) calls must receive
// previous values forming a permutation of 0..N-1 — this checks both
// exactly-once application (Lemma 3.7 / Corollary 3.6 carried to P-Sim) and
// response consistency (Lemma 3.9).
func TestPSimResponsesArePermutation(t *testing.T) {
	const n, per = 8, 400
	for _, name := range []string{"default", "no-backoff", "wide-backoff"} {
		t.Run(name, func(t *testing.T) {
			var opts []PSimOption[uint64]
			switch name {
			case "no-backoff":
				opts = append(opts, WithBackoff[uint64](1, 0))
			case "wide-backoff":
				opts = append(opts, WithBackoff[uint64](512, 4096))
			}
			u := faaPSim(n, opts...)
			seen := make([]bool, n*per)
			var mu sync.Mutex
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					local := make([]uint64, 0, per)
					for k := 0; k < per; k++ {
						local = append(local, u.Apply(id, 1))
					}
					mu.Lock()
					defer mu.Unlock()
					for _, prev := range local {
						if prev >= n*per {
							t.Errorf("previous value %d out of range", prev)
							return
						}
						if seen[prev] {
							t.Errorf("previous value %d duplicated", prev)
							return
						}
						seen[prev] = true
					}
				}(i)
			}
			wg.Wait()
			if got := u.Read(); got != n*per {
				t.Fatalf("final = %d, want %d", got, n*per)
			}
		})
	}
}

// TestPSimPerThreadResponsesMonotonic: a thread adding 1 each time must see
// strictly increasing previous values (its own ops are ordered).
func TestPSimPerThreadResponsesMonotonic(t *testing.T) {
	const n, per = 6, 300
	u := faaPSim(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			last := -1
			for k := 0; k < per; k++ {
				prev := int(u.Apply(id, 1))
				if prev <= last {
					t.Errorf("thread %d: previous values not increasing (%d after %d)", id, prev, last)
					return
				}
				last = prev
			}
		}(i)
	}
	wg.Wait()
}

func TestPSimLinearizableHistories(t *testing.T) {
	// Small adversarial histories validated by the Wing–Gong checker.
	const n, per, rounds = 3, 4, 25
	for r := 0; r < rounds; r++ {
		u := faaPSim(n)
		rec := check.NewRecorder(n * per)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for k := 0; k < per; k++ {
					slot := rec.Invoke(id, check.OpAdd, 1)
					prev := u.Apply(id, 1)
					rec.Return(slot, prev, false)
				}
			}(i)
		}
		wg.Wait()
		if ok, err := check.Linearizable(rec.Operations(), check.CounterSpec(0)); err != nil {
			t.Fatalf("linearizability search: %v", err)
		} else if !ok {
			t.Fatalf("round %d: history not linearizable:\n%v", r, rec.Operations())
		}
	}
}

func TestPSimStatsAccounting(t *testing.T) {
	const n, per = 4, 100
	u := faaPSim(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	s := u.Stats()
	if s.Ops != n*per {
		t.Fatalf("Ops = %d, want %d", s.Ops, n*per)
	}
	// Every op either published or was served; combined ops cover all ops.
	if s.Combined != n*per {
		t.Fatalf("Combined = %d, want %d (each op applied exactly once)", s.Combined, n*per)
	}
	if s.AvgHelping < 1 {
		t.Fatalf("AvgHelping = %f < 1", s.AvgHelping)
	}
	u.ResetStats()
	if s2 := u.Stats(); s2.Ops != 0 || s2.CASSuccesses != 0 {
		t.Fatalf("stats after reset: %+v", s2)
	}
}

// TestPSimHelpingUnderWideBackoff: the wide-window configuration must
// actually produce combining (helping degree > 1 at n > 1) — the mechanism
// behind Figure 2 (right).
func TestPSimHelpingUnderWideBackoff(t *testing.T) {
	const n, per = 8, 300
	u := faaPSim(n, WithBackoff[uint64](512, 4096))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	s := u.Stats()
	if s.AvgHelping <= 1.05 {
		t.Fatalf("AvgHelping = %.2f; expected combining under wide backoff", s.AvgHelping)
	}
	if s.ServedByOther == 0 {
		t.Fatal("no operation was served by a helper despite combining")
	}
}

func TestPSimPaddedActOption(t *testing.T) {
	const n, per = 70, 20 // two Act words
	u := faaPSim(n, WithPaddedAct[uint64]())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	if got := u.Read(); got != n*per {
		t.Fatalf("final = %d, want %d", got, n*per)
	}
}

func TestPSimManyThreadsMultiWordAct(t *testing.T) {
	const n, per = 130, 10 // three Act words, dense layout
	u := faaPSim(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	if got := u.Read(); got != n*per {
		t.Fatalf("final = %d, want %d", got, n*per)
	}
}

func TestPSimPanicsOnBadProcessID(t *testing.T) {
	u := faaPSim(2)
	for _, id := range []int{-1, 2, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Apply(%d) did not panic", id)
				}
			}()
			u.Apply(id, 1)
		}()
	}
}

func TestPSimPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPSim(0) did not panic")
		}
	}()
	faaPSim(0)
}

func TestPSimN(t *testing.T) {
	if faaPSim(7).N() != 7 {
		t.Fatal("N() wrong")
	}
}

func TestPSimReadDoesNotDisturb(t *testing.T) {
	u := faaPSim(2)
	u.Apply(0, 5)
	for i := 0; i < 10; i++ {
		if u.Read() != 5 {
			t.Fatal("Read changed the state")
		}
	}
	if got := u.Apply(1, 1); got != 5 {
		t.Fatalf("Apply after Reads = %d, want 5", got)
	}
}

// TestPSimDistinctArgTypes exercises announcement of composite arguments.
func TestPSimDistinctArgTypes(t *testing.T) {
	type op struct {
		kind string
		val  uint64
	}
	u := NewPSim(2, uint64(0), func(st *uint64, _ int, o op) uint64 {
		switch o.kind {
		case "add":
			*st += o.val
		case "sub":
			*st -= o.val
		}
		return *st
	})
	if got := u.Apply(0, op{"add", 10}); got != 10 {
		t.Fatalf("add = %d", got)
	}
	if got := u.Apply(1, op{"sub", 3}); got != 7 {
		t.Fatalf("sub = %d", got)
	}
}

// TestPSimAccessCountSequential: a single-thread instance takes the solo
// fast path, which performs exactly 2 shared accesses per operation: the
// state read and the publishing store. The announce, Act toggle, Act read,
// and CAS exist only to coordinate with helpers, which cannot exist at n=1.
// The O(k) announce-read term is exercised by the contended tests.
func TestPSimAccessCountSequential(t *testing.T) {
	u := faaPSim(1)
	c := xatomic.NewAccessCounter(1)
	u.SetAccessCounter(c)
	const per = 100
	for k := 0; k < per; k++ {
		u.Apply(0, 1)
	}
	if got := float64(c.Total()) / per; got != 2 {
		t.Fatalf("accesses/op = %v, want 2", got)
	}
}

// TestPSimAccessCountGrowsWithHelping: under forced combining, each
// *publishing* operation reads k announce records, but the combined
// operations pay almost nothing — so accesses per op stay bounded by a
// small constant plus the (amortized) announce reads. Sanity: total
// accesses stay well under Herlihy-style O(n) per op.
func TestPSimAccessCountGrowsWithHelping(t *testing.T) {
	const n, per = 8, 200
	u := faaPSim(n, WithBackoff[uint64](512, 4096))
	c := xatomic.NewAccessCounter(n)
	u.SetAccessCounter(c)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	perOp := float64(c.Total()) / float64(n*per)
	if perOp < 4 || perOp > 20 {
		t.Fatalf("accesses/op = %v, expected small constant + amortized k", perOp)
	}
}

// TestPSimQuiescentInvariant: Lemma 3.3 carried to P-Sim — at quiescence
// (every announced operation completed), the published applied vector
// equals the Act vector bit for bit.
func TestPSimQuiescentInvariant(t *testing.T) {
	const n, per = 8, 200
	u := faaPSim(n)
	for round := 0; round < 5; round++ {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for k := 0; k < per; k++ {
					u.Apply(id, 1)
				}
			}(i)
		}
		wg.Wait()
		ls := u.state.Load()
		act := u.act.Load()
		if !ls.applied.Equal(act) {
			t.Fatalf("round %d: applied %v != Act %v at quiescence", round, ls.applied, act)
		}
	}
}

// TestPSimUnderGCPressure: forced garbage collections between operations
// must not perturb correctness (the GC-published records are the variant's
// whole reclamation story).
func TestPSimUnderGCPressure(t *testing.T) {
	const n, per = 6, 150
	u := faaPSim(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
				if k%32 == 0 {
					runtime.GC()
				}
			}
		}(i)
	}
	wg.Wait()
	if got := u.Read(); got != n*per {
		t.Fatalf("counter = %d, want %d", got, n*per)
	}
}
