// Package queue implements the four shared-queue algorithms of Figure 3
// (right): SimQueue — the paper's wait-free queue built from TWO P-Sim
// instances so enqueuers and dequeuers synchronize independently — and its
// competitors: the Michael–Scott lock-free queue, the two-lock queue (with
// CLH locks, the paper's lock-based baseline), and a flat-combining queue.
//
// All implementations satisfy Interface; each process id must be driven by
// one goroutine at a time.
package queue

// Interface is the common shape of every queue implementation in the
// benchmark suite. Dequeue returns ok=false on an empty queue.
type Interface[V any] interface {
	Enqueue(id int, v V)
	Dequeue(id int) (V, bool)
	// Name identifies the algorithm in harness output.
	Name() string
}
