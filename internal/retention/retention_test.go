package retention

import (
	"testing"
	"time"

	"repro/internal/spool"
)

// fill appends n events with 1ns-spaced timestamps starting at ts0.
func fill(s *spool.Spool[spool.Event], n int, ts0 int64) {
	for i := 0; i < n; i++ {
		s.Append(0, spool.Event{Payload: uint64(i), TS: ts0 + int64(i)})
	}
}

func TestPassMaxEvents(t *testing.T) {
	s := spool.NewEvents(2, spool.Config{SegEvents: 8, MaxSegments: 1 << 20})
	fill(s, 100, 0)
	r := NewRunner(s, 1, Policy{MaxEvents: 24})
	lwm := r.Pass()
	if lwm < 100-24-8 || lwm > 100-24 { // segment-granular in the sealed ring
		t.Fatalf("lwm=%d after MaxEvents=24 over 100 events", lwm)
	}
	v := s.Snapshot()
	if v.Len() > 24+8 {
		t.Fatalf("retained %d events, want ≤ 32", v.Len())
	}
	if r.LowWater() != lwm {
		t.Fatalf("runner records lwm %d, pass returned %d", r.LowWater(), lwm)
	}
}

func TestPassMaxAgeUsesInjectedClock(t *testing.T) {
	s := spool.NewEvents(2, spool.Config{SegEvents: 4})
	fill(s, 10, 0) // ts 0..9
	r := NewRunner(s, 1, Policy{MaxAge: 5 * time.Nanosecond})
	r.Now = func() int64 { return 11 } // cutoff = 11 - 5 = 6
	lwm := r.Pass()
	// Segments [0..3](ts≤3) and [4..7](ts≤7): the first ages out wholly,
	// the second straddles the cutoff and is kept; the active tail [8,9] is
	// young. Segment-granular: lwm = 4.
	if lwm != 4 {
		t.Fatalf("age pass lwm=%d, want 4", lwm)
	}
	// Time passes; the whole log ages out, including the sealed-on-demand
	// active tail.
	r.Now = func() int64 { return 100 }
	if lwm := r.Pass(); lwm != 10 {
		t.Fatalf("aged-out pass lwm=%d, want 10 (everything expired)", lwm)
	}
	if v := s.Snapshot(); v.Len() != 0 {
		t.Fatalf("retained %d events after total expiry", v.Len())
	}
}

func TestPassIsOneLinearizableStep(t *testing.T) {
	// A pass with several legs goes through ONE ApplyBatch vector: the
	// construction's combining statistics show a single announce-level
	// operation batch for it (CAS successes advance by at most the chunk
	// count, not per leg). We assert the observable part: the pass result
	// equals the final watermark and the runner counted one pass.
	s := spool.NewEvents(2, spool.Config{SegEvents: 4})
	fill(s, 40, 0)
	r := NewRunner(s, 1, Policy{MaxAge: 10 * time.Nanosecond, MaxSegments: 2, MaxEvents: 6})
	r.Now = func() int64 { return 45 }
	lwm := r.Pass()
	if got := s.Snapshot().LowWater(); got != lwm {
		t.Fatalf("pass returned %d but spool lwm is %d", lwm, got)
	}
	if r.Passes() != 1 {
		t.Fatalf("passes=%d, want 1", r.Passes())
	}
	// Age cutoff 35 keeps segment [32..35] (it straddles); MaxEvents=6 asks
	// for offset 34 but trims are segment-granular in the sealed ring: 32.
	if lwm != 32 {
		t.Fatalf("lwm=%d, want 32", lwm)
	}
}

func TestRunnerStartStop(t *testing.T) {
	s := spool.NewEvents(2, spool.Config{SegEvents: 4})
	r := NewRunner(s, 1, Policy{MaxEvents: 8})
	r.Start(time.Millisecond)
	defer r.Stop()
	deadline := time.After(5 * time.Second)
	for r.Passes() == 0 {
		fill(s, 16, 0)
		select {
		case <-deadline:
			t.Fatal("runner made no pass in 5s")
		case <-time.After(2 * time.Millisecond):
		}
	}
	r.Stop()
	done := r.Passes()
	time.Sleep(5 * time.Millisecond)
	if r.Passes() != done {
		t.Fatal("runner kept passing after Stop")
	}
	// Watermark never regresses.
	if v := s.Snapshot(); v.LowWater() > v.End() {
		t.Fatalf("lwm %d beyond end %d", v.LowWater(), v.End())
	}
}

func TestEmptyPolicyPassIsReadOnly(t *testing.T) {
	s := spool.NewEvents(2, spool.Config{SegEvents: 4})
	fill(s, 10, 0)
	r := NewRunner(s, 1, Policy{})
	if lwm := r.Pass(); lwm != 0 {
		t.Fatalf("empty policy moved lwm to %d", lwm)
	}
	if v := s.Snapshot(); v.Len() != 10 {
		t.Fatalf("empty policy expired events: retained %d", v.Len())
	}
	r.Start(time.Millisecond) // no-op
	r.Stop()
}
