package fmul

import (
	"sync"
	"testing"
)

func allImpls(n int) []Interface {
	return []Interface{
		NewPSim(n),
		NewPSimPooled(n),
		NewCLH(n),
		NewMCS(n),
		NewLockFree(n),
		NewFC(n, 0, 0),
		NewHerlihy(n),
		NewCombTree(n),
	}
}

func TestFMulSequentialAllImpls(t *testing.T) {
	for _, o := range allImpls(1) {
		t.Run(o.Name(), func(t *testing.T) {
			if got := o.Apply(0, 3); got != 1 {
				t.Fatalf("first = %d, want 1", got)
			}
			if got := o.Apply(0, 5); got != 3 {
				t.Fatalf("second = %d, want 3", got)
			}
			if got := o.Read(); got != 15 {
				t.Fatalf("Read = %d, want 15", got)
			}
		})
	}
}

// TestFMulConcurrentProduct: multiplication is commutative, so however the
// operations linearize, the final product must equal the product of all
// applied factors — for every implementation.
func TestFMulConcurrentProduct(t *testing.T) {
	const n, per = 8, 200
	for _, o := range allImpls(n) {
		t.Run(o.Name(), func(t *testing.T) {
			var want uint64 = 1
			for i := 0; i < n*per; i++ {
				want *= 3
			}
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for k := 0; k < per; k++ {
						o.Apply(id, 3)
					}
				}(i)
			}
			wg.Wait()
			if got := o.Read(); got != want {
				t.Fatalf("product = %#x, want %#x", got, want)
			}
		})
	}
}

// TestFMulResponsesChain: under a single thread, each response must equal
// the previous response times the factor — response consistency.
func TestFMulResponsesChain(t *testing.T) {
	for _, o := range allImpls(1) {
		t.Run(o.Name(), func(t *testing.T) {
			prev := uint64(1)
			for k := 0; k < 30; k++ {
				got := o.Apply(0, 7)
				if got != prev {
					t.Fatalf("op %d: response %d, want %d", k, got, prev)
				}
				prev *= 7
			}
		})
	}
}

func TestFMulNames(t *testing.T) {
	seen := map[string]bool{}
	for _, o := range allImpls(1) {
		if o.Name() == "" || seen[o.Name()] {
			t.Fatalf("bad/duplicate name %q", o.Name())
		}
		seen[o.Name()] = true
	}
}

func TestFMulStatsExposed(t *testing.T) {
	p := NewPSim(2)
	p.Apply(0, 3)
	if s := p.Stats(); s.Ops != 1 {
		t.Fatalf("PSim stats: %+v", s)
	}
	pp := NewPSimPooled(2)
	pp.Apply(0, 3)
	if s := pp.Stats(); s.Ops != 1 {
		t.Fatalf("pooled stats: %+v", s)
	}
	fc := NewFC(2, 0, 0)
	fc.Apply(0, 3)
	if s := fc.Stats(); s.Served == 0 {
		t.Fatalf("FC stats: %+v", s)
	}
}
