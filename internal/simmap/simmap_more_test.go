package simmap

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/check"
)

// TestMapGetDuringWrites: wait-free Gets run full speed against writers; a
// Get for a key written once and never deleted must never miss after the
// write completes.
func TestMapGetDuringWrites(t *testing.T) {
	const writers, per = 4, 300
	m := New[uint64, uint64](writers, 4)
	m.Put(0, 9999, 1) // the stable key

	stop := make(chan struct{})
	errs := make(chan string, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, ok := m.Get(9999); !ok {
				select {
				case errs <- "stable key vanished during unrelated writes":
				default:
				}
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				m.Put(id, uint64(id*per+k), uint64(k))
				m.Delete(id, uint64(id*per+k))
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// TestMapPrefixSharing: updating one key must not disturb other keys in the
// same stripe chain (the prefix-copy rebuild).
func TestMapPrefixSharing(t *testing.T) {
	m := New[int, int](1, 1) // everything in one stripe chain
	for k := 0; k < 10; k++ {
		m.Put(0, k, k*10)
	}
	m.Put(0, 5, 999)   // middle of the chain
	m.Delete(0, 0)     // another chain position
	m.Put(0, 42, 4242) // fresh key
	for k := 1; k < 10; k++ {
		want := k * 10
		if k == 5 {
			want = 999
		}
		if v, ok := m.Get(k); !ok || v != want {
			t.Fatalf("key %d = (%d,%v), want %d", k, v, ok, want)
		}
	}
	if _, ok := m.Get(0); ok {
		t.Fatal("deleted key still present")
	}
	if v, _ := m.Get(42); v != 4242 {
		t.Fatal("fresh key lost")
	}
}

// TestMapDeleteHeadMiddleTail covers removeKey's three list positions.
func TestMapDeleteHeadMiddleTail(t *testing.T) {
	m := New[int, int](1, 1)
	for k := 1; k <= 3; k++ {
		m.Put(0, k, k)
	}
	// Chain order is insertion-dependent; delete all three one by one and
	// verify the remainder after each step.
	m.Delete(0, 2)
	if _, ok := m.Get(2); ok {
		t.Fatal("middle delete failed")
	}
	if v, _ := m.Get(1); v != 1 {
		t.Fatal("neighbor lost after middle delete")
	}
	m.Delete(0, 1)
	m.Delete(0, 3)
	if m.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", m.Len())
	}
}

// TestMapStripeRouting: keys route deterministically — the same key always
// lands on the same stripe (Put then Get round-trips for many keys).
func TestMapStripeRouting(t *testing.T) {
	m := New[string, int](1, 16)
	keys := []string{"", "a", "b", "ab", "ba", "hello", "world", "κλειδί", "🔑"}
	for i, k := range keys {
		m.Put(0, k, i)
	}
	for i, k := range keys {
		if v, ok := m.Get(k); !ok || v != i {
			t.Fatalf("key %q = (%d,%v), want %d", k, v, ok, i)
		}
	}
}

// TestMapLinearizablePartitioned: a longer concurrent history checked
// per-key with the partitioned checker (sound because every map operation
// touches exactly one key).
func TestMapLinearizablePartitioned(t *testing.T) {
	const n, per, keys = 4, 10, 3
	m := New[uint64, uint64](n, 2)
	rec := check.NewRecorder(n * per)
	slotKey := make([]uint64, n*per) // key of the op recorded in each slot
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seed := uint64(id) + 1
			for k := 0; k < per; k++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				key := seed % keys
				if seed%2 == 0 {
					v := seed % 1000 // writes are small distinct-ish values
					slot := rec.Invoke(id, check.OpWrite, v)
					slotKey[slot] = key
					m.Put(id, key, v)
					rec.Return(slot, 0, false)
				} else {
					slot := rec.Invoke(id, check.OpRead, 0)
					slotKey[slot] = key
					got, _ := m.Get(key)
					rec.Return(slot, got, false)
				}
			}
		}(i)
	}
	wg.Wait()
	ops := rec.Operations()
	// The recorder's slot order matches ops order (slot i -> ops[i]).
	keyOf := make(map[int64]uint64, len(ops))
	for i, o := range ops {
		keyOf[o.Invoke] = slotKey[i]
	}
	partOf := func(o check.Operation) string {
		return fmt.Sprintf("k%d", keyOf[o.Invoke])
	}
	spec := func(string) check.Spec { return check.RegisterSpec(0) }
	if ok, err := check.LinearizablePartitioned(ops, partOf, spec); err != nil {
		t.Fatalf("linearizability search: %v", err)
	} else if !ok {
		t.Fatal("per-key history not linearizable")
	}
}
