// Package spin implements the queue-based spin locks the paper benchmarks
// against: the CLH lock (Craig; Magnusson, Landin and Hagersten), the MCS
// lock (Mellor-Crummey and Scott), and a test-and-test-and-set lock used by
// flat combining. CLH is the paper's lock baseline for Figure 2 and the
// lock-based stack/queue of Figure 3 (footnote 2: MCS performed the same or
// slightly worse on their ccNUMA host, so they report CLH).
//
// Spinning is cooperative: waiters call runtime.Gosched inside the spin so
// the locks remain live on hosts with fewer cores than goroutines.
package spin

import (
	"runtime"
	"sync/atomic"

	"repro/internal/pad"
)

// clhNode is a CLH queue node; the locked flag is padded so a releasing
// thread's store does not collide with its successor's spin variable line.
type clhNode struct {
	locked pad.Bool
}

// CLH is a Craig–Landin–Hagersten queue lock. Each acquiring thread enqueues
// a node by swapping the tail pointer and spins locally on its predecessor's
// flag, giving FIFO admission and one remote write per hand-off.
//
// Use NewCLH; each participating goroutine needs its own Handle.
type CLH struct {
	tail atomic.Pointer[clhNode]
}

// CLHHandle is one goroutine's private view of a CLH lock. A handle may be
// used for any number of strictly nested Lock/Unlock pairs, but never
// concurrently.
type CLHHandle struct {
	lock *CLH
	node *clhNode // node to enqueue on next Lock
	pred *clhNode // predecessor node while the lock is held
}

// NewCLH returns an unlocked CLH lock.
func NewCLH() *CLH {
	l := &CLH{}
	l.tail.Store(&clhNode{}) // dummy released node
	return l
}

// NewHandle returns a per-goroutine handle on the lock.
func (l *CLH) NewHandle() *CLHHandle {
	return &CLHHandle{lock: l, node: &clhNode{}}
}

// Lock acquires the lock, spinning (cooperatively) until the predecessor
// releases it.
func (h *CLHHandle) Lock() {
	h.node.locked.V.Store(true)
	pred := h.lock.tail.Swap(h.node)
	for pred.locked.V.Load() {
		runtime.Gosched()
	}
	h.pred = pred
}

// Unlock releases the lock. As in the classic CLH protocol, the thread
// recycles its predecessor's node for its own next acquisition (its own node
// may still be observed by the successor).
func (h *CLHHandle) Unlock() {
	h.node.locked.V.Store(false)
	h.node = h.pred
	h.pred = nil
}
