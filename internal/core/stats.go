package core

import (
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// StatsPlane holds a construction instance's per-thread combining counters,
// built directly on the observability primitives (internal/obs): one padded
// single-writer slot per process id per counter, so the instrumentation adds
// no coherence traffic. Because these ARE obs counters, attaching an instance
// to a metrics registry (Register) publishes the very counters the hot path
// already maintains — enabling observability never adds a second accounting
// plane to the operation path.
//
// The plane is also the carrier for the flight recorder: hot paths that
// already hold the plane pointer nil-check its Trace field, so event tracing
// rides the instrumentation channel that is already wired through every
// construction — no second plumbing layer, no build tags, zero cost when
// disabled beyond one predictable branch.
type StatsPlane struct {
	Ops        *obs.Counter // operations completed, by owning thread
	CASSuccess *obs.Counter // successful state-publish CAS/SC
	CASFail    *obs.Counter // failed state-publish CAS/SC
	Combined   *obs.Counter // operations applied while combining
	ServedBy   *obs.Counter // own ops completed by another thread's combine

	// Trace is the optional flight recorder (nil = tracing disabled). Set it
	// through the owning construction's SetTracer, before operations start.
	Trace *trace.Tracer

	allocPools []allocAttachment
}

// AllocRegistrar is the slice of a memory-plane pool the stats plane needs
// in order to publish it: both alloc.Pool and alloc.Shared satisfy it.
type AllocRegistrar interface {
	Register(reg *obs.Registry, class string)
}

type allocAttachment struct {
	class string
	pool  AllocRegistrar
}

// AttachAllocPool records a memory-plane pool (internal/alloc) to publish
// alongside the combining counters. Register then publishes it under the
// fixed alloc_* families with class "<base>_<class>", where base is the
// registration prefix's name with any label block dropped — e.g. prefix
// "fmul" and class "state" yield alloc_blocks_total{class="fmul_state"}.
// Call before Register; not safe concurrently with operations.
func (p *StatsPlane) AttachAllocPool(class string, pool AllocRegistrar) {
	p.allocPools = append(p.allocPools, allocAttachment{class: class, pool: pool})
}

// NewStatsPlane returns a zeroed plane for n process ids.
func NewStatsPlane(n int) *StatsPlane {
	return &StatsPlane{
		Ops:        obs.NewCounter(n),
		CASSuccess: obs.NewCounter(n),
		CASFail:    obs.NewCounter(n),
		Combined:   obs.NewCounter(n),
		ServedBy:   obs.NewCounter(n),
	}
}

// Register publishes the plane's counters in reg under prefix:
// <prefix>_ops_total, <prefix>_cas_success_total, <prefix>_cas_fail_total,
// <prefix>_combined_total, <prefix>_served_by_total. A labeled prefix
// (obs.Labeled) keeps the label block trailing: map{shard="3"} registers
// map_ops_total{shard="3"}. Several planes may register under one prefix
// (striped structures, a queue's two ends); the registry sums them.
func (p *StatsPlane) Register(reg *obs.Registry, prefix string) {
	reg.AttachCounter(obs.Join(prefix, "_ops_total"), p.Ops)
	reg.AttachCounter(obs.Join(prefix, "_cas_success_total"), p.CASSuccess)
	reg.AttachCounter(obs.Join(prefix, "_cas_fail_total"), p.CASFail)
	reg.AttachCounter(obs.Join(prefix, "_combined_total"), p.Combined)
	reg.AttachCounter(obs.Join(prefix, "_served_by_total"), p.ServedBy)
	if len(p.allocPools) > 0 {
		base, _ := obs.SplitName(prefix)
		for _, a := range p.allocPools {
			a.pool.Register(reg, base+"_"+a.class)
		}
	}
}

// Aggregate sums the per-thread slots into a Stats.
//
// Snapshot-only contract: Aggregate may run at any time — every slot read is
// an atomic load — but the result is a statistical snapshot, not a
// linearizable cut. Counters are summed one after another while writers keep
// writing, so derived identities (Ops == CASSuccess + ServedBy, say) can be
// transiently off by in-flight operations. Consumers that difference two
// snapshots must clamp at zero (obs.Registry.Delta already does): a Reset
// racing the window, or a slot read before/after a neighbour's update, can
// make an interval appear to shrink.
func (p *StatsPlane) Aggregate() Stats {
	s := Stats{
		Ops:           p.Ops.Total(),
		CASSuccesses:  p.CASSuccess.Total(),
		CASFailures:   p.CASFail.Total(),
		Combined:      p.Combined.Total(),
		ServedByOther: p.ServedBy.Total(),
	}
	if s.CASSuccesses > 0 {
		s.AvgHelping = float64(s.Combined) / float64(s.CASSuccesses)
	}
	return s
}

// Reset zeroes every counter with atomic stores. Memory-safe at any time
// (concurrent Aggregate reads either the old value or zero, never a torn
// word), but NOT atomic with respect to writers: the hot path's
// single-writer increment is a load+store pair, so an increment in flight
// during Reset can resurrect its pre-reset value, and a reset landing
// between two of Aggregate's counter reads yields a mixed-epoch snapshot.
// Treat Reset as a quiescent-point operation; for live windows, difference
// successive Aggregate/Snapshot values instead (obs.Registry.Delta clamps
// at zero, so a racing reset can never produce a negative rate).
func (p *StatsPlane) Reset() {
	p.Ops.Reset()
	p.CASSuccess.Reset()
	p.CASFail.Reset()
	p.Combined.Reset()
	p.ServedBy.Reset()
}

// Stats aggregates the combining behaviour of a construction instance. The
// AverageHelping value is the paper's "average degree of helping" plotted in
// the right part of Figure 2: how many announced operations each successful
// state change applied.
type Stats struct {
	Ops           uint64  // total completed operations
	CASSuccesses  uint64  // total successful publishes
	CASFailures   uint64  // total failed publishes
	Combined      uint64  // total operations applied inside combines
	ServedByOther uint64  // operations completed for a thread by a helper
	AvgHelping    float64 // Combined / CASSuccesses
}

// Add returns the element-wise sum of two Stats (AvgHelping recomputed), for
// structures built from several instances.
func (s Stats) Add(o Stats) Stats {
	r := Stats{
		Ops:           s.Ops + o.Ops,
		CASSuccesses:  s.CASSuccesses + o.CASSuccesses,
		CASFailures:   s.CASFailures + o.CASFailures,
		Combined:      s.Combined + o.Combined,
		ServedByOther: s.ServedByOther + o.ServedByOther,
	}
	if r.CASSuccesses > 0 {
		r.AvgHelping = float64(r.Combined) / float64(r.CASSuccesses)
	}
	return r
}
