package main

import "testing"

func TestCheckStackStress(t *testing.T) {
	for _, impl := range []string{"sim", "treiber", "elimination", "clh", "fc"} {
		if !checkStack(impl, "stress", 4, 200, 0) {
			t.Fatalf("stack %s failed stress check", impl)
		}
	}
}

func TestCheckStackLinearize(t *testing.T) {
	if !checkStack("sim", "linearize", 3, 0, 10) {
		t.Fatal("SimStack failed linearizability check")
	}
}

func TestCheckQueueStress(t *testing.T) {
	for _, impl := range []string{"sim", "ms", "twolock", "fc"} {
		if !checkQueue(impl, "stress", 4, 200, 0) {
			t.Fatalf("queue %s failed stress check", impl)
		}
	}
}

func TestCheckQueueLinearize(t *testing.T) {
	if !checkQueue("ms", "linearize", 3, 0, 10) {
		t.Fatal("MS queue failed linearizability check")
	}
}

func TestCheckFMul(t *testing.T) {
	for _, impl := range []string{"psim", "pool", "lockfree", "combtree"} {
		if !checkFMul(impl, "stress", 4, 200, 0) {
			t.Fatalf("fmul %s failed stress check", impl)
		}
	}
	if !checkFMul("psim", "linearize", 3, 0, 10) {
		t.Fatal("P-Sim failed linearizability check")
	}
}
