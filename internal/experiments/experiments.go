// Package experiments wires the repository's implementations into the
// harness configurations that regenerate every table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index):
//
//	Figure 2 (left)  — Fetch&Multiply time vs threads, four techniques
//	Figure 2 (right) — average degree of helping vs threads
//	Figure 3 (left)  — stack push/pop pairs vs threads, five stacks
//	Figure 3 (right) — queue enq/deq pairs vs threads, four queues
//	Table 1          — measured shared-memory accesses per operation
//	Ablations        — backoff on/off, pooled vs GC publication, Act layout
package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/fmul"
	"repro/internal/harness"
	"repro/internal/herlihy"
	"repro/internal/lsim"
	"repro/internal/obs/trace"
	"repro/internal/queue"
	"repro/internal/stack"
	"repro/internal/workload"
	"repro/internal/xatomic"
)

// traceHook returns the implementation's SetTracer method when it has one,
// so the harness can attach a flight recorder; implementations without
// tracing hooks (locks, plain CAS loops, …) return nil and run untraced.
func traceHook(o any) func(*trace.Tracer) {
	if t, ok := o.(interface{ SetTracer(*trace.Tracer) }); ok {
		return t.SetTracer
	}
	return nil
}

// fmulMaker adapts a fmul implementation constructor into a harness.Maker.
// Each operation multiplies by a small random odd factor (odd keeps the
// state word from collapsing to 0 mod 2^64).
func fmulMaker(name string, build func(n int) fmul.Interface, helping func(fmul.Interface) float64) harness.Maker {
	return func(n int) harness.Instance {
		o := build(n)
		inst := harness.Instance{
			Name: name,
			Op: func(id int, rng *workload.RNG) {
				o.Apply(id, uint64(rng.Intn(1000))*2+3)
			},
			Trace: traceHook(o),
		}
		if helping != nil {
			inst.Helping = func() float64 { return helping(o) }
		}
		return inst
	}
}

// Fig2Makers returns the Figure 2 contenders: P-Sim (default adaptive
// backoff and a fixed wide-window variant that maximizes combining — on a
// host with fewer cores than threads the wide window is what recreates the
// paper's helping behaviour, since goroutines are otherwise never preempted
// inside the announce→combine window), CLH spin lock, the simple lock-free
// CAS loop, and flat combining (plus MCS, which the paper measured and
// footnoted).
func Fig2Makers(withMCS bool) []harness.Maker {
	makers := []harness.Maker{
		fmulMaker("P-Sim", func(n int) fmul.Interface { return fmul.NewPSim(n) },
			func(o fmul.Interface) float64 { return o.(*fmul.PSim).Stats().AvgHelping }),
		fmulMaker("P-Sim(combine)", func(n int) fmul.Interface {
			return fmul.NewPSim(n, core.WithBackoff[uint64](512, 4096))
		},
			func(o fmul.Interface) float64 { return o.(*fmul.PSim).Stats().AvgHelping }),
		fmulMaker("CLH-lock", func(n int) fmul.Interface { return fmul.NewCLH(n) }, nil),
		fmulMaker("lock-free CAS", func(n int) fmul.Interface { return fmul.NewLockFree(n) }, nil),
		fmulMaker("FlatCombining", func(n int) fmul.Interface { return fmul.NewFC(n, 0, 0) },
			func(o fmul.Interface) float64 { return o.(*fmul.FC).Stats().AvgCombine }),
		fmulMaker("CombiningTree", func(n int) fmul.Interface { return fmul.NewCombTree(n) }, nil),
	}
	if withMCS {
		makers = append(makers, fmulMaker("MCS-lock", func(n int) fmul.Interface { return fmul.NewMCS(n) }, nil))
	}
	return makers
}

// Fig2BatchMakers returns the fig2-batch contenders: P-Sim driven through
// ApplyBatch at every requested batch size (the per-call operation vector
// rides one announce slot, so announce/toggle/backoff/CAS amortize across
// the batch), for both the GC-based and the pooled variant. Batch 1 routes
// through plain Apply and is the baseline the CI smoke compares against.
// The harness reports throughput per LOGICAL operation (Instance.OpsPerCall).
func Fig2BatchMakers(batches []int) []harness.Maker {
	var makers []harness.Maker
	for _, b := range batches {
		b := b
		if b <= 1 {
			makers = append(makers,
				fmulMaker("P-Sim b=1", func(n int) fmul.Interface { return fmul.NewPSim(n) },
					func(o fmul.Interface) float64 { return o.(*fmul.PSim).Stats().AvgHelping }),
				fmulMaker("P-Sim(pool) b=1", func(n int) fmul.Interface { return fmul.NewPSimPooled(n) }, nil))
			continue
		}
		makers = append(makers,
			batchMaker(fmt.Sprintf("P-Sim b=%d", b), b,
				func(n int) fmulBatcher { return fmul.NewPSim(n) },
				func(o fmulBatcher) float64 { return o.(*fmul.PSim).Stats().AvgHelping }),
			batchMaker(fmt.Sprintf("P-Sim(pool) b=%d", b), b,
				func(n int) fmulBatcher { return fmul.NewPSimPooled(n) }, nil))
	}
	return makers
}

// fmulBatcher is the batched Fetch&Multiply surface fig2-batch drives.
type fmulBatcher interface {
	ApplyBatch(id int, fs, res []uint64) []uint64
	Name() string
}

// batchMaker adapts a batched fmul constructor: one Op call applies a
// vector of b random factors through ApplyBatch, reusing per-thread arg and
// result slices so the measured path is the construction, not the driver.
func batchMaker(name string, b int, build func(n int) fmulBatcher, helping func(fmulBatcher) float64) harness.Maker {
	return func(n int) harness.Instance {
		o := build(n)
		args := make([][]uint64, n)
		res := make([][]uint64, n)
		for i := range args {
			args[i] = make([]uint64, b)
		}
		inst := harness.Instance{
			Name:       name,
			OpsPerCall: b,
			Op: func(id int, rng *workload.RNG) {
				fs := args[id]
				for i := range fs {
					fs[i] = uint64(rng.Intn(1000))*2 + 3
				}
				res[id] = o.ApplyBatch(id, fs, res[id])
			},
			Trace: traceHook(o),
		}
		if helping != nil {
			inst.Helping = func() float64 { return helping(o) }
		}
		return inst
	}
}

// stackMaker adapts a stack constructor: one harness operation is one
// push+pop pair, matching the paper's "10^6 pairs of a push and a pop".
func stackMaker(build func(n int) stack.Interface[uint64], helping func(stack.Interface[uint64]) float64) harness.Maker {
	return func(n int) harness.Instance {
		s := build(n)
		inst := harness.Instance{
			Name: s.Name(),
			Op: func(id int, rng *workload.RNG) {
				s.Push(id, rng.Uint64())
				rng.RandomWork(workload.DefaultMaxWork)
				s.Pop(id)
			},
			Trace: traceHook(s),
		}
		if helping != nil {
			inst.Helping = func() float64 { return helping(s) }
		}
		return inst
	}
}

// Fig3StackMakers returns the Figure 3 (left) contenders.
func Fig3StackMakers() []harness.Maker {
	return []harness.Maker{
		stackMaker(func(n int) stack.Interface[uint64] { return stack.NewSimStack[uint64](n) },
			func(s stack.Interface[uint64]) float64 { return s.(*stack.SimStack[uint64]).Stats().AvgHelping }),
		stackMaker(func(n int) stack.Interface[uint64] { return stack.NewTreiber[uint64](n) }, nil),
		stackMaker(func(n int) stack.Interface[uint64] { return stack.NewElimination[uint64](n) }, nil),
		stackMaker(func(n int) stack.Interface[uint64] { return stack.NewCLHStack[uint64](n) }, nil),
		stackMaker(func(n int) stack.Interface[uint64] { return stack.NewFCStack[uint64](n, 0, 0) },
			func(s stack.Interface[uint64]) float64 { return s.(*stack.FCStack[uint64]).Stats().AvgCombine }),
	}
}

// queueMaker adapts a queue constructor: one harness operation is one
// enqueue+dequeue pair (the Michael–Scott benchmark shape the paper reuses).
func queueMaker(build func(n int) queue.Interface[uint64], helping func(queue.Interface[uint64]) float64) harness.Maker {
	return func(n int) harness.Instance {
		q := build(n)
		inst := harness.Instance{
			Name: q.Name(),
			Op: func(id int, rng *workload.RNG) {
				q.Enqueue(id, rng.Uint64())
				rng.RandomWork(workload.DefaultMaxWork)
				q.Dequeue(id)
			},
			Trace: traceHook(q),
		}
		if helping != nil {
			inst.Helping = func() float64 { return helping(q) }
		}
		return inst
	}
}

// Fig3QueueMakers returns the Figure 3 (right) contenders.
func Fig3QueueMakers() []harness.Maker {
	return []harness.Maker{
		queueMaker(func(n int) queue.Interface[uint64] { return queue.NewSimQueue[uint64](n) },
			func(q queue.Interface[uint64]) float64 { return q.(*queue.SimQueue[uint64]).Stats().AvgHelping }),
		queueMaker(func(n int) queue.Interface[uint64] { return queue.NewMSQueue[uint64](n) }, nil),
		queueMaker(func(n int) queue.Interface[uint64] { return queue.NewTwoLockQueue[uint64](n) }, nil),
		queueMaker(func(n int) queue.Interface[uint64] { return queue.NewFCQueue[uint64](n, 0, 0) },
			func(q queue.Interface[uint64]) float64 { return q.(*queue.FCQueue[uint64]).Stats().AvgCombine }),
	}
}

// AllocChurnMakers compares the unified memory plane (internal/alloc) against
// the pre-plane per-thread recycling rings on the allocation-heaviest hot
// path: P-Sim's state-record churn, where every committed round retires one
// O(n)-sized record and reissues another. The two arms run the identical
// protocol — only the reclamation scheme differs (core.WithLegacyRings) — so
// the spread is the cost (or win) of the plane itself; the CI smoke gates
// the plane arm at ≥ 0.8× ring throughput.
func AllocChurnMakers() []harness.Maker {
	return []harness.Maker{
		fmulMaker("P-Sim rings", func(n int) fmul.Interface {
			return fmul.NewPSim(n, core.WithLegacyRings[uint64]())
		}, nil),
		fmulMaker("P-Sim plane", func(n int) fmul.Interface { return fmul.NewPSim(n) }, nil),
	}
}

// AblationBackoffMakers compares P-Sim with adaptive backoff against P-Sim
// with backoff disabled (§4: "P-Sim achieves very good performance even if
// no backoff is employed").
func AblationBackoffMakers() []harness.Maker {
	return []harness.Maker{
		fmulMaker("P-Sim(backoff)", func(n int) fmul.Interface { return fmul.NewPSim(n) }, nil),
		fmulMaker("P-Sim(none)", func(n int) fmul.Interface {
			return fmul.NewPSim(n, core.WithBackoff[uint64](1, 0))
		}, nil),
	}
}

// AblationPublicationMakers compares the GC-based state publication against
// the paper-exact pooled/seqlock layout.
func AblationPublicationMakers() []harness.Maker {
	return []harness.Maker{
		fmulMaker("P-Sim(GC)", func(n int) fmul.Interface { return fmul.NewPSim(n) }, nil),
		fmulMaker("P-Sim(pool)", func(n int) fmul.Interface { return fmul.NewPSimPooled(n) }, nil),
	}
}

// AblationActLayoutMakers compares the paper's dense Act vector layout with
// a one-word-per-cache-line layout.
func AblationActLayoutMakers() []harness.Maker {
	return []harness.Maker{
		fmulMaker("Act-dense", func(n int) fmul.Interface { return fmul.NewPSim(n) }, nil),
		fmulMaker("Act-padded", func(n int) fmul.Interface {
			return fmul.NewPSim(n, core.WithPaddedAct[uint64]())
		}, nil),
	}
}

// Table1Row is one measured row of the Table 1 experiment.
type Table1Row struct {
	Algorithm   string
	Threads     int
	Ops         uint64
	AccessesPer float64
}

// Table1Measure runs opsPerThread operations per thread on each instrumented
// universal construction — theoretical Sim, L-Sim (on a w=2 object) and
// Herlihy's construction — and reports measured shared accesses per
// operation. Sim's column stays flat as n grows (the paper's O(1)); L-Sim
// grows with contention k (O(kw)); Herlihy's grows with n.
func Table1Measure(threadCounts []int, opsPerThread int) []Table1Row {
	var rows []Table1Row
	for _, n := range threadCounts {
		rows = append(rows, measureSim(n, opsPerThread))
		rows = append(rows, measurePSim(n, opsPerThread))
		rows = append(rows, measureLSim(n, opsPerThread))
		rows = append(rows, measureHerlihy(n, opsPerThread))
	}
	return rows
}

func measurePSim(n, opsPerThread int) Table1Row {
	u := core.NewPSim(n, uint64(0), func(st *uint64, _ int, arg uint64) uint64 {
		prev := *st
		*st = prev + arg
		return prev
	})
	c := xatomic.NewAccessCounter(n)
	u.SetAccessCounter(c)
	runThreads(n, opsPerThread, func(id, _ int) { u.Apply(id, 1) })
	total := uint64(n * opsPerThread)
	return Table1Row{Algorithm: "P-Sim", Threads: n, Ops: total,
		AccessesPer: float64(c.Total()) / float64(total)}
}

func runThreads(n, opsPerThread int, op func(id, k int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < opsPerThread; k++ {
				op(id, k)
			}
		}(i)
	}
	wg.Wait()
}

func measureSim(n, opsPerThread int) Table1Row {
	u := core.NewSim(n, 8, uint64(0), func(st uint64, _ int, op uint64) (uint64, uint64) {
		return st + op, st
	})
	c := xatomic.NewAccessCounter(n)
	u.SetAccessCounter(c)
	runThreads(n, opsPerThread, func(id, _ int) { u.ApplyOp(id, 1) })
	total := uint64(n * opsPerThread)
	return Table1Row{Algorithm: "Sim", Threads: n, Ops: total,
		AccessesPer: float64(c.Total()) / float64(total)}
}

func measureLSim(n, opsPerThread int) Table1Row {
	l := lsim.New[uint64, uint64, uint64](n)
	a := l.NewRootItem(0)
	b := l.NewRootItem(0)
	// w = 2: the operation touches two items.
	op := func(m *lsim.Mem[uint64, uint64, uint64], arg uint64) uint64 {
		v := m.Read(a)
		m.Write(a, v+arg)
		m.Write(b, m.Read(b)^v)
		return v
	}
	c := xatomic.NewAccessCounter(n)
	l.SetAccessCounter(c)
	runThreads(n, opsPerThread, func(id, _ int) { l.ApplyOp(id, op, 1) })
	total := uint64(n * opsPerThread)
	return Table1Row{Algorithm: "L-Sim(w=2)", Threads: n, Ops: total,
		AccessesPer: float64(c.Total()) / float64(total)}
}

func measureHerlihy(n, opsPerThread int) Table1Row {
	u := herlihy.New(n, uint64(0), func(st uint64, _ int, arg uint64) (uint64, uint64) {
		return st + arg, st
	})
	c := xatomic.NewAccessCounter(n)
	u.SetAccessCounter(c)
	runThreads(n, opsPerThread, func(id, _ int) { u.Apply(id, 1) })
	total := uint64(n * opsPerThread)
	return Table1Row{Algorithm: "Herlihy-UC", Threads: n, Ops: total,
		AccessesPer: float64(c.Total()) / float64(total)}
}

// Table1Render formats measured rows as a table with one row per thread
// count and one column per algorithm.
func Table1Render(rows []Table1Row) string {
	algos := []string{}
	threads := []int{}
	seenA := map[string]bool{}
	seenT := map[int]bool{}
	cell := map[string]float64{}
	for _, r := range rows {
		if !seenA[r.Algorithm] {
			seenA[r.Algorithm] = true
			algos = append(algos, r.Algorithm)
		}
		if !seenT[r.Threads] {
			seenT[r.Threads] = true
			threads = append(threads, r.Threads)
		}
		cell[fmt.Sprintf("%s/%d", r.Algorithm, r.Threads)] = r.AccessesPer
	}
	var b strings.Builder
	b.WriteString("measured shared-memory accesses per operation:\n")
	fmt.Fprintf(&b, "%-8s", "threads")
	for _, a := range algos {
		fmt.Fprintf(&b, " %14s", a)
	}
	b.WriteByte('\n')
	for _, n := range threads {
		fmt.Fprintf(&b, "%-8d", n)
		for _, a := range algos {
			v, ok := cell[fmt.Sprintf("%s/%d", a, n)]
			if !ok {
				v = math.NaN()
			}
			fmt.Fprintf(&b, " %14.1f", v)
		}
		b.WriteByte('\n')
	}
	b.WriteString(`
paper Table 1 (asymptotic shared-memory accesses):
  Herlihy [17]            O(n^3 s)
  GroupUpdate [1]         O(n^2 s log n)
  IndividualUpdate [1]    O(nw + s)
  F-RedBlue [10]          O(min{k, log n})
  S-RedBlue [10]          O(k + s)
  Chuong et al. [7]       O(nw)
  Sim   (this paper)      O(1)
  P-Sim (this paper, §4)  O(k)  — announce array replaces the collect
  L-Sim (this paper)      O(kw)
`)
	return b.String()
}
