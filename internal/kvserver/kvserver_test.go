package kvserver

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// dialPipe wires a client to ServeConn over an in-memory pipe.
func dialPipe(t *testing.T, s *Server, id int) (send func(string) string, shutdown func()) {
	t.Helper()
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer server.Close()
		s.ServeConn(id, server)
		close(done)
	}()
	r := bufio.NewReader(client)
	send = func(line string) string {
		if _, err := fmt.Fprintln(client, line); err != nil {
			t.Fatalf("write: %v", err)
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return strings.TrimSpace(resp)
	}
	return send, func() {
		client.Close()
		<-done
	}
}

func TestProtocolBasics(t *testing.T) {
	s := New(2, 2)
	send, done := dialPipe(t, s, 0)
	defer done()

	cases := [][2]string{
		{"GET a", "NIL"},
		{"PUT a 5", "OK NIL"},
		{"GET a", "VAL 5"},
		{"PUT a 7", "OK 5"},
		{"DEL a", "OK 7"},
		{"DEL a", "OK NIL"},
		{"LEN", "LEN 0"},
		{"PUT b 1", "OK NIL"},
		{"LEN", "LEN 1"},
	}
	for _, c := range cases {
		if got := send(c[0]); got != c[1] {
			t.Fatalf("%q -> %q, want %q", c[0], got, c[1])
		}
	}
}

func TestProtocolErrors(t *testing.T) {
	s := New(1, 1)
	send, done := dialPipe(t, s, 0)
	defer done()

	for _, req := range []string{
		"PUT a", "PUT a b c d", "PUT a notanumber",
		"GET", "DEL", "NOSUCH x",
	} {
		if got := send(req); !strings.HasPrefix(got, "ERR") {
			t.Fatalf("%q -> %q, want ERR", req, got)
		}
	}
	// The connection survives errors.
	if got := send("PUT k 1"); got != "OK NIL" {
		t.Fatalf("connection broken after errors: %q", got)
	}
}

func TestProtocolQuit(t *testing.T) {
	s := New(1, 1)
	send, done := dialPipe(t, s, 0)
	if got := send("QUIT"); got != "BYE" {
		t.Fatalf("QUIT -> %q", got)
	}
	done()
}

func TestProtocolStats(t *testing.T) {
	s := New(1, 1)
	send, done := dialPipe(t, s, 0)
	defer done()
	send("PUT x 1")
	got := send("STATS")
	if !strings.HasPrefix(got, "STATS ops=") {
		t.Fatalf("STATS -> %q", got)
	}
	// Extended fields: publish failures and helped completions.
	for _, field := range []string{"cas_fail=", "served_by="} {
		if !strings.Contains(got, field) {
			t.Fatalf("STATS missing %s: %q", field, got)
		}
	}
}

// TestCommandMetrics: the per-command counters and the map recorder see the
// traffic.
func TestCommandMetrics(t *testing.T) {
	s := New(2, 2)
	send, done := dialPipe(t, s, 0)
	defer done()
	send("PUT a 1")
	send("PUT b 2")
	send("GET a")
	send("DEL b")
	send("BOGUS")

	snap := s.Registry().Snapshot()
	for name, want := range map[string]uint64{
		"kv_put_total": 2,
		"kv_get_total": 1,
		"kv_del_total": 1,
		"kv_err_total": 1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	// 3 mutations went through the instrumented map.
	if got := snap.Counters["map_ops_total"]; got != 3 {
		t.Fatalf("map_ops_total = %d, want 3", got)
	}
	lat, ok := snap.Histograms["map_op_latency_ns"]
	if !ok || lat.Count != 3 {
		t.Fatalf("map_op_latency_ns count = %d (present=%v), want 3", lat.Count, ok)
	}
	if lat.Quantile(0.99) == 0 || lat.Max == 0 {
		t.Fatalf("latency histogram recorded no time: %+v", lat)
	}
}

// TestCloseUnblocksInFlightConnections: Close must not wait for (or leak)
// serve goroutines stuck reading from idle clients — it closes their
// connections and drains.
func TestCloseUnblocksInFlightConnections(t *testing.T) {
	s := New(2, 2)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}

	// Two clients connect, speak once, then go idle holding the connection.
	var conns []net.Conn
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		conns = append(conns, conn)
		r := bufio.NewReader(conn)
		fmt.Fprintf(conn, "PUT k%d 1\n", i)
		if resp, _ := r.ReadString('\n'); !strings.HasPrefix(resp, "OK") {
			t.Fatalf("PUT -> %q", resp)
		}
	}
	if got := s.Registry().Snapshot().Gauges["kv_connections"]; got != 2 {
		t.Fatalf("kv_connections = %d, want 2", got)
	}

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on in-flight idle connections")
	}
	if got := s.Registry().Snapshot().Gauges["kv_connections"]; got != 0 {
		t.Fatalf("kv_connections after close = %d, want 0", got)
	}
	for _, c := range conns {
		c.Close()
	}
}

func TestTCPEndToEnd(t *testing.T) {
	s := New(4, 4)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	fmt.Fprintln(conn, "PUT hello 42")
	if resp, _ := r.ReadString('\n'); strings.TrimSpace(resp) != "OK NIL" {
		t.Fatalf("PUT -> %q", resp)
	}
	fmt.Fprintln(conn, "GET hello")
	if resp, _ := r.ReadString('\n'); strings.TrimSpace(resp) != "VAL 42" {
		t.Fatalf("GET -> %q", resp)
	}
}

// TestConcurrentClientsConservation: many TCP clients hammer disjoint keys;
// every binding must be present afterwards.
func TestConcurrentClientsConservation(t *testing.T) {
	const clients, keysPer = 6, 50
	s := New(clients, 4)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for k := 0; k < keysPer; k++ {
				fmt.Fprintf(conn, "PUT k%d-%d %d\n", c, k, c*1000+k)
				if resp, _ := r.ReadString('\n'); !strings.HasPrefix(resp, "OK") {
					t.Errorf("PUT -> %q", resp)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if got := s.Map().Len(); got != clients*keysPer {
		t.Fatalf("map has %d entries, want %d", got, clients*keysPer)
	}
	for c := 0; c < clients; c++ {
		for k := 0; k < keysPer; k++ {
			key := fmt.Sprintf("k%d-%d", c, k)
			if v, ok := s.Map().Get(key); !ok || v != uint64(c*1000+k) {
				t.Fatalf("key %s = (%d,%v)", key, v, ok)
			}
		}
	}
}

// TestClientSlotRecycling: more sequential connections than client slots —
// ids must recycle.
func TestClientSlotRecycling(t *testing.T) {
	s := New(2, 2)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		r := bufio.NewReader(conn)
		fmt.Fprintf(conn, "PUT k%d 1\nQUIT\n", i)
		if resp, _ := r.ReadString('\n'); !strings.HasPrefix(resp, "OK") {
			t.Fatalf("PUT -> %q", resp)
		}
		if resp, _ := r.ReadString('\n'); strings.TrimSpace(resp) != "BYE" {
			t.Fatalf("QUIT -> %q", resp)
		}
		conn.Close()
	}
	if got := s.Map().Len(); got != 8 {
		t.Fatalf("map has %d entries, want 8", got)
	}
}
