// Package lsim implements L-Sim (paper §6, Algorithms 7 and 8): the Sim
// universal construction for LARGE objects. Where Sim/P-Sim copy the whole
// simulated state each round, L-Sim operates directly on the shared data
// structure: every data item lives in its own ItemSV record holding two
// value slots, a toggle selecting the current slot, and the sequence number
// of the combining round that last wrote it. Helpers of a round execute the
// same set of operations deterministically against per-helper directories
// (write sets), then write the dirty items back with per-item SC, so a round
// costs O(kw) shared accesses — k the interval contention, w the number of
// items an operation touches — instead of O(s) for the full state.
//
// The construction is wait-free and linearizable (Theorem 6.1). Announced
// operations are executed by ALL concurrent helpers of a round, so an
// operation function must be deterministic and must access shared data only
// through its Mem parameter.
//
// # Hot-path parity with P-Sim
//
// The paper's LL/SC cells (round record and per-item ItemSV) are realized as
// atomic pointers under the hazard-pointer discipline of
// internal/core/recycle.go: LL is a protected load (store the pointer in the
// reader's slot, re-load, accept only if unchanged), VL is a pointer
// re-load, and SC is a CAS — sound against ABA because a record that might
// be re-published is never recycled while any slot protects it. Retired
// round records and item bodies go to the unified memory plane
// (internal/alloc): per-thread two-stack handles reissued through
// alloc.Typed over the instance's hazard planes, so the steady-state
// ApplyOp/ApplyBatch path allocates nothing (gated by
// TestLSimApplyAllocsSteadyState): announcements rotate through
// collect.BatchAnnounce box pools, round records and item bodies come back
// from the plane, and the per-helper directory is a reusable slice. As with
// P-Sim, recycling turns the strictly bounded LL into a lock-free protected
// load: a protection retry is paid for by another thread's successful
// publish, and a failed bounded acquire is treated exactly like a failed SC.
// Mem.Alloc is the exception to zero-allocation: it creates genuinely new
// items, which is inherent.
//
// Values are treated as immutable once handed to Write/NewRootItem/Alloc:
// an item body stores the V it was given, and recycling a retired body
// overwrites only the body's slots, never memory a previously returned V
// points to.
package lsim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/pad"
	"repro/internal/xatomic"
)

// Item is one shared data item (struct ItemSV of Algorithm 7): two value
// slots plus toggle and round stamp. The body pointer is manipulated with
// the hazard-guarded LL/SC emulation described in the package comment. The
// zero value of V plays the paper's ⊥. Items belong to the instance that
// created them (NewRootItem or Mem.Alloc); their bodies recycle through
// that instance's hazard plane.
type Item[V any] struct {
	haz *core.Hazards[itemBody[V]]
	p   atomic.Pointer[itemBody[V]]
}

type itemBody[V any] struct {
	val      [2]V
	toggle   int          // index of the CURRENT slot; 1-toggle holds the old value
	seq      uint64       // round that last wrote the item
	nextFree *itemBody[V] // memory-plane chain link; unused while live
}

func newItem[V any](h *core.Hazards[itemBody[V]], init V) *Item[V] {
	b := &itemBody[V]{}
	b.val[0] = init
	it := &Item[V]{haz: h}
	it.p.Store(b)
	return it
}

// Current returns the item's committed value — for inspection outside any
// operation (tests, examples, read paths that tolerate a point read). Inside
// an operation use Mem.Read. Lock-free: the body is read under an anonymous
// hazard slot so a concurrent write-back can neither recycle it mid-read nor
// ABA the pointer.
func (it *Item[V]) Current() V {
	b, s := it.haz.AcquireAnon(&it.p)
	v := b.val[b.toggle]
	it.haz.ReleaseAnon(s)
	return v
}

// OpFunc is a sequential operation on the large object. It may read, write
// and allocate items only through m, must be deterministic (helpers replay
// it), and must not retain m beyond the call.
type OpFunc[V, A, R any] func(m *Mem[V, A, R], arg A) R

// lop is one announced operation; a batch announcement is a vector of them.
type lop[V, A, R any] struct {
	fn  OpFunc[V, A, R]
	arg A
}

// lsimState is the published round record (struct State of Algorithm 7): the
// applied/papplied double bit vector, per-process responses (single and
// batch rows), the round number, and the shared list of items allocated
// during the round. Records recycle through the memory plane under the
// state hazard plane.
type lsimState[R any] struct {
	applied  []bool
	papplied []bool
	rvals    []R
	brvals   [][]R // batch-response rows, forwarded round to round
	seq      uint64
	varList  *newList
	nextFree *lsimState[R] // memory-plane chain link; unused while live
}

// newList is the shared new-variable list; head is a dummy node so the
// first insertion is the same CAS as every other (the paper's var_list).
type newList struct {
	head newVar
}

type newVar struct {
	item any // *Item[V]; stored untyped to keep newList monomorphic
	next atomic.Pointer[newVar]
}

// hazardAttempts bounds the protected-load retries of the round-record LL.
// Exhaustion means that many successful publishes raced the load, and is
// treated exactly like a failed SC (the round is abandoned).
const hazardAttempts = 8

// anonItemSlots is the preallocated anonymous hazard-slot count of the item
// plane (Current readers with no process id); more readers overflow, they
// never wait.
const anonItemSlots = 4

// anonStateSlots serves pid-less round-record reads (Rvals/Seq helpers).
const anonStateSlots = 2

// lthread is one process's private recycling state (single-writer; padded so
// neighbouring threads' cursors do not share cache lines).
type lthread[V, A, R any] struct {
	inited bool
	blk    *alloc.Handle[lsimState[R]] // retired round records
	iblk   *alloc.Handle[itemBody[V]]  // retired item bodies
	lact   xatomic.Snapshot            // GetSet scratch
	mem    Mem[V, A, R]                // reusable directory + alloc cursor
	batch  []lop[V, A, R]              // announce-vector scratch
	_      pad.CacheLinePad
}

// LSim is an L-Sim universal object instance.
type LSim[V, A, R any] struct {
	n int

	announce *collect.BatchAnnounce[lop[V, A, R]]
	act      *collect.ActSet
	members  []*collect.Member

	state atomic.Pointer[lsimState[R]]
	haz   *core.Hazards[lsimState[R]] // round-record hazard plane
	ihaz  *core.Hazards[itemBody[V]]  // item-body hazard plane

	// Memory plane: guarded pools for round records and item bodies (see the
	// package comment's hot-path-parity section).
	rpool *alloc.Typed[lsimState[R]]
	ipool *alloc.Typed[itemBody[V]]

	threads []lthread[V, A, R]

	stats        *core.StatsPlane
	itemsWritten *obs.Counter // committed item write-backs (write-set sizes)
	rec          *obs.SimRecorder
	counter      *xatomic.AccessCounter
}

// New returns an L-Sim instance for n processes. Items making up the
// object's initial state are created with NewRootItem before any ApplyOp.
func New[V, A, R any](n int) *LSim[V, A, R] {
	if n < 1 {
		panic("lsim: New needs n >= 1")
	}
	l := &LSim[V, A, R]{
		n:            n,
		announce:     collect.NewBatchAnnounce[lop[V, A, R]](n),
		act:          collect.NewActSet(n),
		members:      make([]*collect.Member, n),
		haz:          core.NewHazards[lsimState[R]](n, anonStateSlots),
		ihaz:         core.NewHazards[itemBody[V]](n, anonItemSlots),
		threads:      make([]lthread[V, A, R], n),
		stats:        core.NewStatsPlane(n),
		itemsWritten: obs.NewCounter(n),
	}
	for i := range l.members {
		l.members[i] = l.act.Member(i)
	}
	l.state.Store(&lsimState[R]{
		applied:  make([]bool, n),
		papplied: make([]bool, n),
		rvals:    make([]R, n),
		brvals:   make([][]R, n),
		varList:  &newList{},
	})
	// Memory plane: round records carry cache 2(n+1) per thread (the old
	// rings held 2n+2); item bodies a deeper cache (one round may retire up
	// to a whole write-set of bodies). Neither pool Resets at Put — a retired
	// record or body may still be hazard-protected, so it is only mutated at
	// reissue, after the guard probe clears it.
	l.rpool = alloc.NewTyped(alloc.NewPool(n, alloc.Config[lsimState[R]]{
		New: func() *lsimState[R] {
			return &lsimState[R]{
				applied:  make([]bool, n),
				papplied: make([]bool, n),
				rvals:    make([]R, n),
				brvals:   make([][]R, n),
				varList:  &newList{},
			}
		},
		Next:    func(s *lsimState[R]) *lsimState[R] { return s.nextFree },
		SetNext: func(s, nx *lsimState[R]) { s.nextFree = nx },
		Chain:   n + 1,
		Slots:   n,
	}), l.haz)
	itemChain := 2 * n
	if itemChain < 8 {
		itemChain = 8
	}
	l.ipool = alloc.NewTyped(alloc.NewPool(n, alloc.Config[itemBody[V]]{
		New:     func() *itemBody[V] { return new(itemBody[V]) },
		Next:    func(b *itemBody[V]) *itemBody[V] { return b.nextFree },
		SetNext: func(b, nx *itemBody[V]) { b.nextFree = nx },
		Chain:   itemChain,
		Slots:   n,
	}), l.ihaz)
	l.stats.AttachAllocPool("state", l.rpool.Pool())
	l.stats.AttachAllocPool("item", l.ipool.Pool())
	return l
}

// NewRootItem creates a free-standing item initialized to init. Root items
// form the object's initial structure; items allocated during operations
// come from Mem.Alloc.
func (l *LSim[V, A, R]) NewRootItem(init V) *Item[V] {
	return newItem(l.ihaz, init)
}

// SetAccessCounter attaches shared-access instrumentation (Table 1). Not
// safe to call concurrently with ApplyOp.
func (l *LSim[V, A, R]) SetAccessCounter(c *xatomic.AccessCounter) { l.counter = c }

// SetRecorder attaches a distribution recorder: sampled per-operation
// latency and combining degree are recorded into rec's per-thread slots
// (single-writer, no coherence traffic — see internal/obs). Pass nil to
// disable. Not safe to call concurrently with operations.
func (l *LSim[V, A, R]) SetRecorder(rec *obs.SimRecorder) { l.rec = rec }

// SetTracer attaches a flight recorder (see internal/obs/trace): committed
// rounds (with combining degree and ops applied), publish failures,
// recycling hits/misses on both the round-record and item-body rings
// (distinguished by the event's B payload: 0 = round records, 1 = item
// bodies), and hazard overflow events are recorded into tr's per-thread
// rings. Pass nil to disable; the steady state stays allocation-free either
// way. Not safe to call concurrently with operations.
func (l *LSim[V, A, R]) SetTracer(tr *trace.Tracer) {
	l.stats.Trace = tr
	l.rpool.Pool().SetTracer(tr)
	l.ipool.Pool().SetTracer(tr)
	if tr != nil {
		l.haz.SetOverflowHook(func() { tr.AnonInstant(trace.KindHazardOverflow, 0, 0) })
		l.ihaz.SetOverflowHook(func() { tr.AnonInstant(trace.KindHazardOverflow, 0, 1) })
	} else {
		l.haz.SetOverflowHook(nil)
		l.ihaz.SetOverflowHook(nil)
	}
}

// RegisterStats publishes the instance's exact hot-path counters in reg
// under prefix (see core.StatsPlane.Register) plus
// <prefix>_items_written_total, the number of committed per-item write-backs
// (the sum of round write-set sizes).
func (l *LSim[V, A, R]) RegisterStats(reg *obs.Registry, prefix string) {
	l.stats.Register(reg, prefix)
	reg.AttachCounter(prefix+"_items_written_total", l.itemsWritten)
}

// Instrument publishes the instance in reg under prefix: the exact counters
// the hot path already maintains plus a new SimRecorder for the latency and
// combining-degree histograms, which is attached and returned. Call before
// the first operation.
func (l *LSim[V, A, R]) Instrument(reg *obs.Registry, prefix string) *obs.SimRecorder {
	l.RegisterStats(reg, prefix)
	rec := obs.NewSimRecorder(reg, prefix, l.n)
	l.SetRecorder(rec)
	return rec
}

// Stats aggregates combining statistics across processes (see core.Stats;
// CASSuccesses counts committed rounds, Combined the operations they
// applied).
func (l *LSim[V, A, R]) Stats() core.Stats { return l.stats.Aggregate() }

// ItemsWritten returns the total number of committed item write-backs — the
// accumulated write-set size across all rounds.
func (l *LSim[V, A, R]) ItemsWritten() uint64 { return l.itemsWritten.Total() }

// ResetStats zeroes the statistics counters (quiescent-point operation; see
// core.StatsPlane.Reset).
func (l *LSim[V, A, R]) ResetStats() {
	l.stats.Reset()
	l.itemsWritten.Reset()
}

// N returns the number of processes.
func (l *LSim[V, A, R]) N() int { return l.n }

// thread lazily initializes and returns process i's recycling state; safe
// because each id is driven by one goroutine.
func (l *LSim[V, A, R]) thread(i int) *lthread[V, A, R] {
	t := &l.threads[i]
	if !t.inited {
		t.blk = l.rpool.Pool().Handle(i)
		t.iblk = l.ipool.Pool().Handle(i)
		t.lact = xatomic.NewSnapshot(l.n)
		t.mem.l = l
		t.mem.id = i
		t.inited = true
	}
	return t
}

// ApplyOp announces op with argument arg for process i, executes the
// join/attempt/leave protocol of Algorithm 7 (lines 1–7), and returns the
// operation's response. Each process id must be driven by one goroutine.
func (l *LSim[V, A, R]) ApplyOp(i int, op OpFunc[V, A, R], arg A) R {
	if i < 0 || i >= l.n {
		panic(fmt.Sprintf("lsim: process id %d out of range [0,%d)", i, l.n))
	}
	t := l.thread(i)
	t0 := l.rec.Start(i)
	tt := l.stats.Trace.OpStart(i)

	l.announce.PublishOne(i, lop[V, A, R]{fn: op, arg: arg}) // line 1
	l.count(i, 1)
	l.members[i].Join() // line 2
	l.count(i, 1)
	won := false
	l.attempt(i, t, t0, tt, &won) // lines 3–4
	l.attempt(i, t, t0, tt, &won)
	l.members[i].Leave() // line 5
	l.count(i, 1)
	l.attempt(i, t, t0, tt, &won) // line 6: eliminate the evidence of op

	// line 7: read the committed response from the current record while it
	// is hazard-protected (records recycle; an unprotected read could see a
	// rewritten rvals slot).
	ls, _ := l.haz.Acquire(i, &l.state, 0)
	rv := ls.rvals[i]
	l.count(i, 1)

	l.opDone(i, t0, tt, won)
	l.release(i)
	return rv
}

// ApplyBatch announces the vector (op, args[0]) … (op, args[len-1]) as ONE
// announcement for process i — every element is applied consecutively in the
// same combining round, mirroring P-Sim's ApplyBatch — and returns the
// per-element responses appended to res[:0] (pass a reusable buffer to keep
// the steady state allocation-free). A nil res allocates. Empty args is a
// no-op returning res[:0].
func (l *LSim[V, A, R]) ApplyBatch(i int, op OpFunc[V, A, R], args []A, res []R) []R {
	if i < 0 || i >= l.n {
		panic(fmt.Sprintf("lsim: process id %d out of range [0,%d)", i, l.n))
	}
	if len(args) == 0 {
		return res[:0]
	}
	if len(args) == 1 {
		return append(res[:0], l.ApplyOp(i, op, args[0]))
	}
	t := l.thread(i)
	t0 := l.rec.Start(i)
	tt := l.stats.Trace.OpStart(i)

	t.batch = t.batch[:0]
	for _, a := range args {
		t.batch = append(t.batch, lop[V, A, R]{fn: op, arg: a})
	}
	l.announce.Publish(i, t.batch)
	l.count(i, 1)
	l.members[i].Join()
	won := false
	l.attempt(i, t, t0, tt, &won)
	l.attempt(i, t, t0, tt, &won)
	l.members[i].Leave()
	l.attempt(i, t, t0, tt, &won)

	ls, _ := l.haz.Acquire(i, &l.state, 0)
	res = append(res[:0], ls.brvals[i]...)
	l.count(i, 1)

	l.opDone(i, t0, tt, won)
	l.release(i)
	return res
}

// opDone finishes an operation's accounting: operations that never won a
// publish were served by another thread's round.
func (l *LSim[V, A, R]) opDone(i int, t0 obs.Stamp, tt obs.Stamp, won bool) {
	l.stats.Ops.Inc(i)
	if !won {
		l.stats.ServedBy.Inc(i)
		l.rec.OpDone(i, t0)
		l.stats.Trace.OpServed(i, tt)
	}
}

// release clears process i's hazard and announce-reader slots so a thread
// that goes quiet does not pin retired records or announce boxes.
func (l *LSim[V, A, R]) release(i int) {
	l.haz.Clear(i)
	l.ihaz.Clear(i)
	l.announce.Clear(i)
}

// errObsolete aborts an in-progress simulation when the helper discovers the
// state it read is stale (Algorithm 8 line 35's "goto line 38").
type obsoleteError struct{}

func (obsoleteError) Error() string { return "lsim: state obsolete" }

// attempt is Attempt of Algorithm 8: two rounds of
// read-state/simulate/write-back/publish, on recycled round records.
func (l *LSim[V, A, R]) attempt(i int, t *lthread[V, A, R], t0 obs.Stamp, tt obs.Stamp, won *bool) {
	tr := l.stats.Trace
	for j := 0; j < 2; j++ { // line 9
		ls, ok := l.haz.Acquire(i, &l.state, hazardAttempts) // line 11 (LL)
		l.count(i, 1)
		if !ok {
			// hazardAttempts publishes raced the protected load; the round
			// is as doomed as a failed SC.
			l.stats.CASFail.Inc(i)
			tr.Instant(i, trace.KindCASFail, 1, 0)
			continue
		}
		l.act.GetSetInto(t.lact) // line 12
		l.count(i, uint64(l.act.Words()))

		ns := l.record(i, t) // lines 14–18, into a recycled record
		ns.seq = ls.seq + 1
		copy(ns.papplied, ls.applied)
		copy(ns.rvals, ls.rvals)
		actPop := uint64(0)
		for q := 0; q < l.n; q++ {
			ns.applied[q] = t.lact.Bit(q)
			if ns.applied[q] {
				actPop++
			}
		}
		l.forwardBatchRows(ns, ls)

		m := &t.mem
		m.reset(ns.seq, &ls.varList.head) // line 13

		// lines 19–37: simulate the announcement of every process whose
		// operation became visible last round (applied ∧ ¬papplied).
		degree, opsApplied := uint64(0), uint64(0)
		if !l.simulate(ls, ns, m, &degree, &opsApplied) {
			l.rpool.Put(t.blk, ns)
			continue // stale state detected mid-simulation — retry round
		}

		if l.state.Load() != ls { // line 38 (VL): the state we read is obsolete
			l.count(i, 1)
			l.stats.CASFail.Inc(i)
			tr.Instant(i, trace.KindCASFail, 1, 0)
			l.rpool.Put(t.blk, ns)
			continue
		}
		l.count(i, 1)

		// lines 39–43: write the dirty directory entries back per-item.
		wrote, later := l.writeBack(i, t, m, ns.seq)
		if later {
			l.rpool.Put(t.blk, ns)
			return // a later round already committed everything (line 40)
		}

		if l.state.CompareAndSwap(ls, ns) { // line 45 (SC)
			l.rpool.Put(t.blk, ls) // retire the replaced record
			l.stats.CASSuccess.Inc(i)
			l.stats.Combined.Add(i, opsApplied)
			l.itemsWritten.Add(i, wrote)
			if !*won {
				*won = true
				l.rec.OpPublished(i, t0, degree)
				tr.OpCommit(i, tt, degree, actPop, opsApplied)
			} else {
				tr.Instant(i, trace.KindRound, degree, opsApplied)
			}
		} else {
			l.rpool.Put(t.blk, ns)
			l.stats.CASFail.Inc(i)
			tr.Instant(i, trace.KindCASFail, 0, 0)
		}
		l.count(i, 1)
	}
}

// record returns a round record to build into, reissued through the guarded
// plane (never one a reader still holds). A recycled record's new-variable
// chain is dropped at reissue — not at Put, when the record may still be
// hazard-protected (its items, if any survived, are owned by the object by
// now).
func (l *LSim[V, A, R]) record(i int, t *lthread[V, A, R]) *lsimState[R] {
	tr := l.stats.Trace
	ns, fresh := l.rpool.Get(t.blk)
	if fresh {
		tr.Rare(i, trace.KindRecycleMiss, uint64(t.blk.Cached()), 0)
	} else {
		tr.Instant(i, trace.KindRecycleHit, uint64(t.blk.Cached()), 0)
		ns.varList.head.next.Store(nil)
	}
	return ns
}

// body returns an item body for a write-back, reissued through the guarded
// plane (never one a reader still holds).
func (l *LSim[V, A, R]) body(i int, t *lthread[V, A, R]) *itemBody[V] {
	tr := l.stats.Trace
	b, fresh := l.ipool.Get(t.iblk)
	if fresh {
		tr.Rare(i, trace.KindRecycleMiss, uint64(t.iblk.Cached()), 1)
	} else {
		tr.Instant(i, trace.KindRecycleHit, uint64(t.iblk.Cached()), 1)
	}
	return b
}

// forwardBatchRows carries every process's pending batch-response row from
// ls into ns by content (rows are never shared between records); a process
// served several rounds ago must still find its responses in whatever
// record is current when it looks.
func (l *LSim[V, A, R]) forwardBatchRows(ns, ls *lsimState[R]) {
	for k := 0; k < l.n; k++ {
		if len(ls.brvals[k]) == 0 {
			ns.brvals[k] = ns.brvals[k][:0]
			continue
		}
		ns.brvals[k] = append(ns.brvals[k][:0], ls.brvals[k]...)
	}
}

// simulate runs every eligible announced vector against m. It reports false
// when the round must be abandoned: either the state was discovered to be
// obsolete through an item stamp, or an announce-box protection failed —
// meaning that process's previous operation completed, which takes a
// successful publish after our LL, so our SC is doomed anyway.
func (l *LSim[V, A, R]) simulate(ls, ns *lsimState[R], m *Mem[V, A, R], degree, ops *uint64) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isObsolete := r.(obsoleteError); isObsolete {
				ok = false
				return
			}
			panic(r)
		}
	}()
	for q := 0; q < l.n; q++ { // line 19
		if ls.applied[q] && !ls.papplied[q] { // line 20
			box, okp := l.announce.Protect(m.id, q) // the vector announced by q
			l.count(m.id, 1)
			if !okp {
				return false
			}
			vec := box.Vec()
			if len(vec) == 1 {
				ns.rvals[q] = vec[0].fn(m, vec[0].arg) // lines 21–37
				ns.brvals[q] = ns.brvals[q][:0]
			} else {
				row := ns.brvals[q][:0]
				for k := range vec {
					row = append(row, vec[k].fn(m, vec[k].arg))
				}
				ns.brvals[q] = row
			}
			*degree++
			*ops += uint64(len(vec))
		}
	}
	return true
}

// writeBack applies the directory's DIRTY entries to the shared items
// (lines 39–43); read-only entries need no write-back (every helper of the
// round computes the same dirty set, so helpers still converge). It returns
// the number of write-backs this helper committed, and later=true when a
// LATER round has already committed — the caller must return immediately
// (every operation of this round, including the caller's, has been applied).
func (l *LSim[V, A, R]) writeBack(i int, t *lthread[V, A, R], m *Mem[V, A, R], seq uint64) (wrote uint64, later bool) {
	for idx := range m.ents {
		d := &m.ents[idx]
		if !d.dirty {
			continue
		}
		it := d.it
		// line 39 (item LL): protected load in the fixed slot; held through
		// the SC below, which gives the CAS true LL/SC semantics (a protected
		// body is never recycled, so it cannot reappear under the pointer).
		body, _ := l.ihaz.Acquire(i, &it.p, 0)
		l.count(i, 1)
		if body.seq > seq {
			return wrote, true // line 40
		}
		if body.seq == seq {
			continue // line 41: a co-helper already wrote it
		}
		nb := l.body(i, t)
		nb.seq = seq
		if body.toggle == 0 { // line 42: preserve val[0] as the old value
			nb.val[0] = body.val[0]
			nb.val[1] = d.val
			nb.toggle = 1
		} else { // line 43
			nb.val[0] = d.val
			nb.val[1] = body.val[1]
			nb.toggle = 0
		}
		if it.p.CompareAndSwap(body, nb) { // per-item SC
			l.ipool.Put(t.iblk, body) // retire the replaced body
			wrote++
		} else {
			// A co-helper's SC won (same round) or a later round's did;
			// either way the item already carries a stamp >= seq. Reuse our
			// unpublished build.
			l.ipool.Put(t.iblk, nb)
		}
		l.count(i, 1)
	}
	return wrote, false
}

func (l *LSim[V, A, R]) count(i int, n uint64) {
	l.counter.Add(i, n)
}

// Rvals returns the committed response of process i (test helper).
func (l *LSim[V, A, R]) Rvals(i int) R {
	ls, s := l.haz.AcquireAnon(&l.state)
	rv := ls.rvals[i]
	l.haz.ReleaseAnon(s)
	return rv
}

// Seq returns the committed round number (test helper).
func (l *LSim[V, A, R]) Seq() uint64 {
	ls, s := l.haz.AcquireAnon(&l.state)
	seq := ls.seq
	l.haz.ReleaseAnon(s)
	return seq
}
