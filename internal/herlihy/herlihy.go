// Package herlihy implements Herlihy's classic wait-free universal
// construction ("Wait-free synchronization", TOPLAS 1991 — the first row of
// the paper's Table 1), as the reference point for the shared-memory-access
// comparison in the Table 1 experiment.
//
// Operations are threaded onto a linked history of cells; the successor of
// each cell is decided by consensus, here realised with a single CAS on the
// cell's next pointer (CAS has infinite consensus number). Wait-freedom
// comes from round-robin helping: after a cell with sequence number s is
// threaded, every process first tries to thread the announced operation of
// process (s+1) mod n before its own, so an announced operation is threaded
// after at most n rounds. Each cell carries the full object state after its
// operation (the state copying that gives the construction its O(n³·s)
// shared-access bill in Table 1; with our access counter attached the
// measured per-operation cost is visibly linear in n where Sim's is flat).
package herlihy

import (
	"sync/atomic"

	"repro/internal/pad"
	"repro/internal/xatomic"
)

// Universal is a Herlihy universal object for n processes.
type Universal[S, A, R any] struct {
	n     int
	apply func(st S, pid int, arg A) (S, R)

	announce []pad.Pointer[cell[S, A, R]]
	head     []pad.Pointer[cell[S, A, R]]

	counter *xatomic.AccessCounter
}

// cell is one history node. next is the consensus object deciding the
// successor (decided at most once, by CAS from nil); done publishes the
// deterministic result of threading the cell (every helper computes the same
// values, the first CAS wins, the rest read).
type cell[S, A, R any] struct {
	pid  int
	arg  A
	next atomic.Pointer[cell[S, A, R]]
	done atomic.Pointer[threaded[S, R]]
}

type threaded[S, R any] struct {
	seq   uint64
	state S
	rv    R
}

// New returns a universal object with initial state init and sequential
// transition apply (pure: must return a fresh state, not mutate its input).
func New[S, A, R any](n int, init S, apply func(st S, pid int, arg A) (S, R)) *Universal[S, A, R] {
	u := &Universal[S, A, R]{
		n:        n,
		apply:    apply,
		announce: make([]pad.Pointer[cell[S, A, R]], n),
		head:     make([]pad.Pointer[cell[S, A, R]], n),
	}
	root := &cell[S, A, R]{pid: -1}
	root.done.Store(&threaded[S, R]{seq: 0, state: init})
	for i := range u.head {
		u.head[i].P.Store(root)
	}
	return u
}

// SetAccessCounter attaches shared-access instrumentation (Table 1). Not
// safe to call concurrently with Apply.
func (u *Universal[S, A, R]) SetAccessCounter(c *xatomic.AccessCounter) { u.counter = c }

// N returns the number of processes.
func (u *Universal[S, A, R]) N() int { return u.n }

// Apply announces arg for process i, helps thread announced cells until its
// own is threaded, and returns its response.
func (u *Universal[S, A, R]) Apply(i int, arg A) R {
	mine := &cell[S, A, R]{pid: i, arg: arg}
	u.announce[i].P.Store(mine)
	u.count(i, 1)

	for mine.done.Load() == nil {
		u.count(i, 1) // the done check reads shared memory
		cur := u.head[i].P.Load()
		u.count(i, 1)
		curDone := cur.done.Load()
		u.count(i, 1)

		// Round-robin helping: prefer the process whose turn it is.
		turn := int((curDone.seq + 1) % uint64(u.n))
		pref := u.announce[turn].P.Load()
		u.count(i, 1)
		if pref == nil || pref.done.Load() != nil {
			pref = mine
		}

		// Consensus on cur's successor.
		cur.next.CompareAndSwap(nil, pref)
		u.count(i, 1)
		next := cur.next.Load()
		u.count(i, 1)

		// Thread the winner: compute its deterministic result and publish.
		ns, rv := u.apply(curDone.state, next.pid, next.arg)
		next.done.CompareAndSwap(nil, &threaded[S, R]{
			seq:   curDone.seq + 1,
			state: ns,
			rv:    rv,
		})
		u.count(i, 1)
		u.head[i].P.Store(next)
		u.count(i, 1)
	}
	return mine.done.Load().rv
}

// Read returns the newest committed state reachable from process i's head:
// it follows the history chain to its threaded end (a quiescent read sees
// the final state; a concurrent read sees some recently committed state).
func (u *Universal[S, A, R]) Read(i int) S {
	cur := u.head[i].P.Load()
	for {
		next := cur.next.Load()
		if next == nil || next.done.Load() == nil {
			return cur.done.Load().state
		}
		cur = next
	}
}

func (u *Universal[S, A, R]) count(i int, n uint64) {
	u.counter.Add(i, n)
}
