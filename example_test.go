package simuc_test

import (
	"fmt"
	"sort"

	simuc "repro"
)

// ExampleNewUniversal turns a plain sequential operation — here a
// Fetch&Multiply — into a wait-free linearizable concurrent object.
func ExampleNewUniversal() {
	fmul := simuc.NewUniversal(2, uint64(1),
		func(st *uint64, pid int, factor uint64) uint64 {
			prev := *st
			*st = prev * factor
			return prev
		},
		nil, simuc.Config{})

	fmt.Println(fmul.Apply(0, 3)) // previous value: 1
	fmt.Println(fmul.Apply(1, 5)) // previous value: 3
	fmt.Println(fmul.Read())      // current state: 15
	// Output:
	// 1
	// 3
	// 15
}

// ExampleNewUniversal_clone shows a state with internal references (a
// slice), which needs a deep-copy function so combining rounds work on
// private copies.
func ExampleNewUniversal_clone() {
	type transfer struct{ from, to int }
	bank := simuc.NewUniversal(2, []int64{100, 0},
		func(st *[]int64, _ int, t transfer) int64 {
			(*st)[t.from] -= 25
			(*st)[t.to] += 25
			return (*st)[t.to]
		},
		func(s []int64) []int64 { return append([]int64(nil), s...) },
		simuc.Config{})

	fmt.Println(bank.Apply(0, transfer{0, 1}))
	fmt.Println(bank.Read())
	// Output:
	// 25
	// [75 25]
}

// ExampleNewStack demonstrates the wait-free SimStack.
func ExampleNewStack() {
	s := simuc.NewStack[string](2, simuc.Config{})
	s.Push(0, "a")
	s.Push(1, "b")
	v, ok := s.Pop(0)
	fmt.Println(v, ok, s.Len())
	// Output:
	// b true 1
}

// ExampleNewQueue demonstrates the wait-free SimQueue.
func ExampleNewQueue() {
	q := simuc.NewQueue[int](2, simuc.Config{})
	q.Enqueue(0, 10)
	q.Enqueue(1, 20)
	a, _ := q.Dequeue(0)
	b, _ := q.Dequeue(1)
	_, empty := q.Dequeue(0)
	fmt.Println(a, b, empty)
	// Output:
	// 10 20 false
}

// ExampleNewMap demonstrates the striped wait-free map; Gets never announce
// (a single atomic load of the stripe's immutable list).
func ExampleNewMap() {
	m := simuc.NewMap[string, int](2, 4)
	m.Put(0, "x", 1)
	m.Put(1, "y", 2)
	prev, existed := m.Put(0, "x", 3)
	v, ok := m.Get("x")
	fmt.Println(prev, existed, v, ok, m.Len())
	// Output:
	// 1 true 3 true 2
}

// ExampleNewCollect demonstrates the Fetch&Add collect object: one shared
// access per update.
func ExampleNewCollect() {
	col := simuc.NewCollect(4, 8)
	u2 := col.Updater(2)
	u2.Update(7)
	fmt.Println(col.Collect())
	// Output:
	// [0 0 7 0]
}

// ExampleNewLargeObject demonstrates L-Sim: operations touch only the items
// they name, never copying the whole object.
func ExampleNewLargeObject() {
	obj := simuc.NewLargeObject[uint64, uint64, uint64](2)
	cells := []*simuc.Item[uint64]{obj.NewRootItem(0), obj.NewRootItem(0)}
	add := func(m *simuc.Mem[uint64, uint64, uint64], arg uint64) uint64 {
		v := m.Read(cells[arg%2])
		m.Write(cells[arg%2], v+10)
		return v
	}
	obj.ApplyOp(0, add, 0)
	obj.ApplyOp(1, add, 1)
	obj.ApplyOp(0, add, 0)
	fmt.Println(cells[0].Current(), cells[1].Current())
	// Output:
	// 20 10
}

// ExampleNewSnapshot demonstrates the single-writer snapshot: updates are
// one Fetch&Add each and a scan is atomic.
func ExampleNewSnapshot() {
	snap := simuc.NewSnapshot(3, 8, 8)
	snap.Writer(0).Update(5)
	snap.Writer(2).Update(9)
	vals := snap.Scan()
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	fmt.Println(vals)
	// Output:
	// [0 5 9]
}
