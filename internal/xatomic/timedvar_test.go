package xatomic

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestTimedVarLLSCBasics pins the shared protocol on both implementations:
// SC succeeds from a current tag, fails after an intervening SC, and Load
// observes the installed pair.
func TestTimedVarLLSCBasics(t *testing.T) {
	for _, tc := range []struct {
		name string
		v    TimedVar
	}{
		{"TimedWord", new(TimedWord)},
		{"TimedSafe", new(TimedSafe)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v := tc.v
			v.Store(3, 10)
			i, s, tag := v.LL()
			if i != 3 || s != 10 {
				t.Fatalf("LL = (%d, %d), want (3, 10)", i, s)
			}
			if !v.SC(tag, 4, 11) {
				t.Fatalf("SC from a current tag must succeed")
			}
			if i, s = v.Load(); i != 4 || s != 11 {
				t.Fatalf("Load = (%d, %d), want (4, 11)", i, s)
			}
			if v.SC(tag, 5, 12) {
				t.Fatalf("SC from a superseded tag must fail")
			}
			// Fresh LL/SC after the stale failure still works.
			_, s, tag = v.LL()
			if !v.SC(tag, 6, s+1) {
				t.Fatalf("fresh SC must succeed")
			}
		})
	}
}

// TestTimedVarStampWrapABA is the deterministic wrap-forcing test: advance
// the stamp by exactly 2^48 so the packed word RECURS, and check the two
// implementations split exactly as documented — the paper-exact TimedWord
// reopens the ABA window (the stale SC succeeds: value equality cannot tell
// the recurrence apart), while the atomic-copy TimedSafe rejects it (cell
// identity survives any value recurrence).
func TestTimedVarStampWrapABA(t *testing.T) {
	const (
		idx   = uint16(1)
		stamp = uint64(5)
	)
	wrapped := stamp + (TimedStampMax + 1) // ≡ stamp mod 2^48: same packed word

	t.Run("TimedWord-reopens", func(t *testing.T) {
		v := new(TimedWord)
		v.Store(idx, stamp)
		_, _, tag := v.LL() // stale observer stalls here
		v.Store(2, 6)       // the variable moves on...
		v.Store(idx, wrapped)
		if i, s := v.Load(); i != idx || s != stamp {
			t.Fatalf("wrap setup broken: Load = (%d, %d), want (%d, %d) — stamp must wrap silently", i, s, idx, stamp)
		}
		if !v.SC(tag, 7, 9) {
			t.Fatalf("TimedWord stale SC must SUCCEED after an exact 2^48 recurrence (the documented wrap bound)")
		}
	})

	t.Run("TimedSafe-immune", func(t *testing.T) {
		v := new(TimedSafe)
		v.Store(idx, stamp)
		_, _, tag := v.LL()
		v.Store(2, 6)
		v.Store(idx, wrapped)
		if v.SC(tag, 7, 9) {
			t.Fatalf("TimedSafe stale SC must FAIL: value recurrence cannot forge cell identity")
		}
		// And the variable is undamaged: a fresh LL/SC still works.
		i, s, tag := v.LL()
		if i != idx || s != wrapped {
			t.Fatalf("Load after failed stale SC = (%d, %d), want (%d, %d)", i, s, idx, wrapped)
		}
		if !v.SC(tag, 8, s+1) {
			t.Fatalf("fresh SC must succeed after the rejected stale SC")
		}
	})
}

// TestNewTimedVarSelection pins the init-time choice: packed word below the
// wrap bound, atomic-copy cells at or above it.
func TestNewTimedVarSelection(t *testing.T) {
	if _, ok := NewTimedVar(1 << 20).(*TimedWord); !ok {
		t.Fatalf("small horizon must select the paper-exact TimedWord")
	}
	if _, ok := NewTimedVar(TimedStampMax).(*TimedSafe); !ok {
		t.Fatalf("horizon at the wrap bound must select the wrap-safe TimedSafe")
	}
	if _, ok := NewTimedVar(1 << 63).(*TimedSafe); !ok {
		t.Fatalf("huge horizon must select the wrap-safe TimedSafe")
	}
}

// TestTimedSafeLLSCStress exercises the wrap-safe path under -race: many
// goroutines race LL/SC increments; exactly one SC per generation wins, so
// the final stamp equals the global success count.
func TestTimedSafeLLSCStress(t *testing.T) {
	const (
		goroutines = 8
		iters      = 3000
	)
	v := new(TimedSafe)
	v.Store(0, 0)
	var wins atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				idx, s, tag := v.LL()
				if v.SC(tag, idx+1, s+1) {
					wins.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	_, s := v.Load()
	if s != wins.Load() {
		t.Fatalf("final stamp %d != successful SCs %d: a stale SC slipped through", s, wins.Load())
	}
	if wins.Load() == 0 {
		t.Fatalf("no SC ever succeeded")
	}
}
