package main

import "testing"

func TestParseThreads(t *testing.T) {
	got, err := parseThreads("1, 2,4")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 4 {
		t.Fatalf("parseThreads = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "0", "-1", "1,,2"} {
		if _, err := parseThreads(bad); err == nil {
			t.Fatalf("parseThreads(%q) accepted", bad)
		}
	}
}
