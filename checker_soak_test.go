package simuc_test

import (
	"testing"
	"time"

	simuc "repro"
	"repro/internal/check"
	"repro/internal/check/v2"
)

// TestCheckerSoakForward10k records a 10,000+ operation mixed queue+map
// history from the public facade and validates it with the forward engine —
// the scale acceptance criterion for the v2 checker: a history two orders
// of magnitude past the Wing–Gong 64-operation budget, checked in seconds.
// Unlike the workload soaks in soak_test.go it runs even under -short: it IS the
// checker's scaling contract, and generation plus check stay well under a
// second in practice (the test enforces a hard 5s budget on the check).
func TestCheckerSoakForward10k(t *testing.T) {
	const (
		threads = 8
		per     = 1250 // threads*per = 10_000 recorded operations
		keys    = 64
	)
	q := simuc.NewQueue[uint64](threads, simuc.Config{})
	m := simuc.NewMap[uint64, uint64](threads, 8)
	rec := check.NewRecorder(threads * per)

	done := make(chan struct{}, threads)
	for i := 0; i < threads; i++ {
		go func(id int) {
			defer func() { done <- struct{}{} }()
			seed := uint64(id)*0x9E3779B9 + 7
			next := func() uint64 {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				return seed
			}
			for k := 0; k < per; k++ {
				switch next() % 5 {
				case 0: // enqueue a globally unique value (keeps the history
					// differentiated, so the O(n log n) queue checker applies)
					v := uint64(id)<<32 | uint64(k+1)
					slot := rec.Invoke(id, check.OpEnqueue, v)
					q.Enqueue(id, v)
					rec.Return(slot, 0, false)
				case 1:
					slot := rec.Invoke(id, check.OpDequeue, 0)
					v, ok := q.Dequeue(id)
					rec.Return(slot, v, ok)
				case 2:
					key, val := next()%keys, next()%1000+1
					slot := rec.Invoke(id, check.OpMapPut, key<<32|val)
					prev, existed := m.Put(id, key, val)
					rec.Return(slot, prev, existed)
				case 3:
					key := next() % keys
					slot := rec.Invoke(id, check.OpMapGet, key<<32)
					v, ok := m.Get(key)
					rec.Return(slot, v, ok)
				default:
					key := next() % keys
					slot := rec.Invoke(id, check.OpMapDel, key<<32)
					prev, existed := m.Delete(id, key)
					rec.Return(slot, prev, existed)
				}
			}
		}(i)
	}
	for i := 0; i < threads; i++ {
		<-done
	}

	h := rec.Operations()
	if len(h) != threads*per {
		t.Fatalf("recorded %d operations, want %d", len(h), threads*per)
	}
	start := time.Now()
	err := v2.CheckHistory(h, v2.DefaultOptions())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("%d-op mixed history rejected or undecided: %v", len(h), err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("forward check of %d ops took %v, want < 5s", len(h), elapsed)
	}
	t.Logf("forward engine checked %d mixed queue+map operations in %v", len(h), elapsed)
}
