// Package workload supplies the synthetic-load machinery of the paper's
// evaluation (§4): a per-goroutine deterministic RNG and the "random number
// (up to 512) of dummy loop iterations" inserted between consecutive
// operations by the same thread, which keeps cache-miss ratios realistic
// without destroying contention. The same technique is credited to Michael
// and Scott's queue evaluation.
package workload

import "sync/atomic"

// DefaultMaxWork is the paper's bound on dummy-loop iterations between
// operations (§4: "A random number (up to 512) of dummy loop iterations").
const DefaultMaxWork = 512

// RNG is an xorshift64* pseudo-random generator. It is deterministic for a
// given seed, allocation-free, and owned by a single goroutine.
type RNG struct {
	s uint64
}

// NewRNG returns a generator seeded from seed (0 is remapped to a fixed
// non-zero constant, since xorshift has an all-zero fixed point).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// workSink defeats dead-code elimination of the dummy loop.
var workSink atomic.Uint64

// RandomWork burns a uniformly random number of dummy-loop iterations in
// [0, max). It is the inter-operation local work of every experiment.
func (r *RNG) RandomWork(max int) {
	if max <= 0 {
		return
	}
	iters := r.Intn(max)
	var s uint64
	for i := 0; i < iters; i++ {
		s += uint64(i) ^ r.s
	}
	workSink.Add(s)
}
