package simmap

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/check"
)

func TestMapBasics(t *testing.T) {
	m := New[string, int](2, 4)
	if _, ok := m.Get("a"); ok {
		t.Fatal("Get on empty map returned ok")
	}
	if prev, existed := m.Put(0, "a", 1); existed || prev != 0 {
		t.Fatalf("first Put = (%d,%v)", prev, existed)
	}
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if prev, existed := m.Put(1, "a", 2); !existed || prev != 1 {
		t.Fatalf("second Put = (%d,%v)", prev, existed)
	}
	if prev, existed := m.Delete(0, "a"); !existed || prev != 2 {
		t.Fatalf("Delete = (%d,%v)", prev, existed)
	}
	if _, ok := m.Get("a"); ok {
		t.Fatal("Get after Delete returned ok")
	}
	if _, existed := m.Delete(0, "a"); existed {
		t.Fatal("double Delete claimed existence")
	}
}

func TestMapLenAndRange(t *testing.T) {
	m := New[int, int](1, 3)
	for k := 0; k < 20; k++ {
		m.Put(0, k, k*10)
	}
	if m.Len() != 20 {
		t.Fatalf("Len = %d", m.Len())
	}
	seen := map[int]int{}
	m.Range(func(k, v int) bool {
		seen[k] = v
		return true
	})
	if len(seen) != 20 || seen[7] != 70 {
		t.Fatalf("Range saw %d entries", len(seen))
	}
	// Early stop.
	count := 0
	m.Range(func(int, int) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("Range did not stop early: %d", count)
	}
}

func TestMapSingleStripe(t *testing.T) {
	m := New[int, int](2, 0) // stripes clamped to 1
	if m.Stripes() != 1 {
		t.Fatalf("Stripes = %d", m.Stripes())
	}
	m.Put(0, 1, 10)
	m.Put(1, 2, 20)
	if v, _ := m.Get(1); v != 10 {
		t.Fatalf("Get = %d", v)
	}
}

// TestMapQuickEquivalence: random op strings vs the builtin map.
func TestMapQuickEquivalence(t *testing.T) {
	f := func(ops []uint16) bool {
		m := New[uint16, uint64](1, 4)
		ref := map[uint16]uint64{}
		for i, o := range ops {
			k := o % 32
			switch o % 3 {
			case 0, 1:
				v := uint64(i) + 1
				prev, existed := m.Put(0, k, v)
				rp, re := ref[k]
				if existed != re || prev != rp {
					return false
				}
				ref[k] = v
			case 2:
				prev, existed := m.Delete(0, k)
				rp, re := ref[k]
				if existed != re || prev != rp {
					return false
				}
				delete(ref, k)
			}
			if v, ok := m.Get(k); ok != keyIn(ref, k) || v != ref[k] {
				return false
			}
		}
		return m.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func keyIn[K comparable, V any](m map[K]V, k K) bool {
	_, ok := m[k]
	return ok
}

// TestMapConcurrentDisjointKeys: writers on disjoint key ranges; every
// binding must survive exactly as written.
func TestMapConcurrentDisjointKeys(t *testing.T) {
	const n, per = 8, 200
	m := New[int, int](n, 8)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				m.Put(id, id*per+k, id)
			}
		}(i)
	}
	wg.Wait()
	if m.Len() != n*per {
		t.Fatalf("Len = %d, want %d", m.Len(), n*per)
	}
	for id := 0; id < n; id++ {
		for k := 0; k < per; k++ {
			if v, ok := m.Get(id*per + k); !ok || v != id {
				t.Fatalf("key %d = (%d,%v)", id*per+k, v, ok)
			}
		}
	}
}

// TestMapConcurrentSameKeyCounter: all processes increment one key through
// Put(prev+1) retries are NOT allowed — instead each process adds distinct
// keys then the counter invariant is checked via per-key last-writer-wins;
// here we verify exactly-once semantics of Put responses on a hot key: the
// sequence of previous values returned across all processes must contain no
// duplicates.
func TestMapConcurrentSameKeyCounter(t *testing.T) {
	const n, per = 6, 150
	m := New[string, uint64](n, 2)
	var mu sync.Mutex
	seen := map[uint64]int{}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				v := uint64(id*per+k) + 1
				prev, existed := m.Put(id, "hot", v)
				mu.Lock()
				if existed {
					seen[prev]++
				} else {
					seen[0]++
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("previous value %d observed %d times (lost/duplicated update)", v, c)
		}
	}
	if len(seen) != n*per {
		t.Fatalf("observed %d previous values, want %d", len(seen), n*per)
	}
}

// TestMapLinearizablePerKey: per-key histories through the register spec.
func TestMapLinearizablePerKey(t *testing.T) {
	const n, per, rounds = 3, 3, 10
	for r := 0; r < rounds; r++ {
		m := New[string, uint64](n, 2)
		rec := check.NewRecorder(2 * n * per)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for k := 0; k < per; k++ {
					v := uint64(id*per+k) + 1
					slot := rec.Invoke(id, check.OpWrite, v)
					m.Put(id, "k", v)
					rec.Return(slot, 0, false)

					slot = rec.Invoke(id, check.OpRead, 0)
					got, _ := m.Get("k")
					rec.Return(slot, got, false)
				}
			}(i)
		}
		wg.Wait()
		if ok, err := check.Linearizable(rec.Operations(), check.RegisterSpec(0)); err != nil {
			t.Fatalf("linearizability search: %v", err)
		} else if !ok {
			t.Fatalf("round %d: per-key history not linearizable:\n%v", r, rec.Operations())
		}
	}
}

func TestMapStats(t *testing.T) {
	m := New[int, int](2, 4)
	m.Put(0, 1, 1)
	m.Put(1, 2, 2)
	m.Delete(0, 1)
	if s := m.Stats(); s.Ops != 3 {
		t.Fatalf("Stats.Ops = %d", s.Ops)
	}
}

func TestMapStructValues(t *testing.T) {
	type rec struct {
		A string
		B []int
	}
	m := New[string, rec](1, 2)
	m.Put(0, "x", rec{A: "hello", B: []int{1, 2}})
	v, ok := m.Get("x")
	if !ok || v.A != "hello" || len(v.B) != 2 {
		t.Fatalf("Get = (%+v,%v)", v, ok)
	}
}
