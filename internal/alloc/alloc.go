// Package alloc is the repository's wait-free memory plane: a fixed-size
// block allocator in the style of "Concurrent Fixed-Size Allocation and Free
// in Constant Time" (Blelloch & Wei, arXiv 2008.04296), unifying the four
// ad-hoc recycling schemes the hot paths grew independently (P-Sim state
// rings, SimQueue node free-lists, L-Sim item bodies, PSimWord read scratch)
// behind one space-bounded discipline.
//
// # Construction
//
// Blocks are plain Go objects of one type T; the allocator never touches
// unsafe and never subdivides memory — "allocation" is taking a retired
// block out of circulation and "free" is putting one back, with the garbage
// collector as the always-correct fallback on either side. Free blocks are
// linked into CHAINS through a caller-supplied link field of T itself (the
// paper's blocks carry their stack links the same way), so the allocator
// needs no auxiliary nodes and moving B blocks is one pointer move.
//
// Each thread owns a Handle holding the paper's two stacks: an active stack
// of at most B blocks pushed and popped at the head, and one full backup
// chain of exactly B blocks. Get pops the active stack, flips the backup in
// when it empties, and falls back to the shared pool; Put pushes the active
// stack, and when it is full moves it wholesale to the backup slot — both
// O(1) in the number of blocks, exactly the two-stack argument of the paper.
//
// The shared pool is a fixed array of cache-line padded slots, each holding
// the head of one full chain. A thread with two full stacks CASes its backup
// chain into an empty slot (one bounded scan); a thread with two empty
// stacks CASes a chain out (one bounded scan). Both scans are wait-free: a
// full sweep that finds no slot simply gives up — the giver drops its chain
// to the garbage collector (which is what bounds the pool's space), the
// taker allocates fresh blocks (which is what keeps Get total). The CAS that
// publishes a chain is the release fence that makes its plain link writes
// visible to the taker, so cross-thread handoff needs no other
// synchronization. A successful take CAS(c, nil) transfers ownership of
// whatever the slot currently holds — an expected-value recurrence is
// harmless because the chain's links are only read after the CAS succeeds.
//
// # Space bound
//
// Beyond live blocks, the allocator retains at most
//
//	threads × 2B  (two stacks per handle)  +  slots × B  (the shared pool)
//
// blocks — O(per-thread cache × threads) for the default slots ≈ threads.
// Every block past that bound is dropped to the GC at Put time, never
// hoarded; Cap() reports the bound and Retained() (quiescent) measures it.
//
// # Composing with hazard pointers
//
// The allocator by itself promises only bounded space and O(1) operations.
// Constructions whose readers protect blocks with hazard pointers
// (core.Hazards) wrap the pool in a Typed front (typed.go), whose Get probes
// candidates against the guard and never reissues a protected block.
// Callers with no stable thread id (anonymous readers) use the Shared front
// (shared.go) instead of a Handle.
package alloc

import (
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/pad"
)

// Config parameterizes a Pool. New, Next and SetNext are required: blocks
// carry their own free-chain link, so the pool needs one word of T (unused
// while the block is live) and accessors for it. Next/SetNext may be backed
// by a plain pointer field — the shared-slot CAS orders cross-thread link
// accesses — or by an atomic one if the field has other uses (queue nodes).
type Config[T any] struct {
	// New allocates a fresh block (the GC fallback of every Get miss).
	New func() *T
	// Next reads the block's free-chain link.
	Next func(*T) *T
	// SetNext writes the block's free-chain link.
	SetNext func(*T, *T)
	// Reset, if non-nil, clears a block at Put time (drop value references
	// before the block parks in a cache or slot).
	Reset func(*T)
	// Chain is B, the blocks per handoff chain (default 8). Per-handle cache
	// capacity is 2B.
	Chain int
	// Slots is the shared pool's slot count (default = threads, min 2).
	Slots int
}

// Pool is one size class of the memory plane: every block is a *T. Handles
// are single-owner; all cross-handle traffic goes through the shared slots.
type Pool[T any] struct {
	newFn   func() *T
	next    func(*T) *T
	setNext func(*T, *T)
	reset   func(*T)
	chain   int

	shared  []pad.Pointer[T]
	handles []Handle[T]

	// Counters are per-handle single-writer slots (see obs.Counter); the
	// plane's metric names are fixed so every pool in the process lands in
	// the same alloc_* families, split by the class label (Register).
	blocks  *obs.Counter // blocks issued (recycled + fresh)
	fresh   *obs.Counter // Get misses paid with a heap allocation
	frees   *obs.Counter // blocks returned
	handoff *obs.Counter // chains moved through the shared pool (give + take)
	drops   *obs.Counter // blocks dropped to the GC (pool full — the space bound)
	starved *obs.Counter // guarded Gets that found every candidate protected

	tr *trace.Tracer
}

// NewPool returns a pool with `threads` single-owner handles.
func NewPool[T any](threads int, cfg Config[T]) *Pool[T] {
	if threads < 1 {
		threads = 1
	}
	if cfg.New == nil || cfg.Next == nil || cfg.SetNext == nil {
		panic("alloc: Config needs New, Next and SetNext")
	}
	if cfg.Chain < 1 {
		cfg.Chain = 8
	}
	if cfg.Slots < 1 {
		cfg.Slots = threads
	}
	if cfg.Slots < 2 {
		cfg.Slots = 2
	}
	p := &Pool[T]{
		newFn:   cfg.New,
		next:    cfg.Next,
		setNext: cfg.SetNext,
		reset:   cfg.Reset,
		chain:   cfg.Chain,
		shared:  make([]pad.Pointer[T], cfg.Slots),
		handles: make([]Handle[T], threads),
		blocks:  obs.NewCounter(threads),
		fresh:   obs.NewCounter(threads),
		frees:   obs.NewCounter(threads),
		handoff: obs.NewCounter(threads),
		drops:   obs.NewCounter(threads),
		starved: obs.NewCounter(threads),
	}
	for i := range p.handles {
		p.handles[i].p = p
		p.handles[i].id = i
	}
	return p
}

// Handle returns thread id's handle. Each handle must be driven by one
// goroutine at a time (the same contract as a construction's process id).
func (p *Pool[T]) Handle(id int) *Handle[T] { return &p.handles[id] }

// Chain returns B, the handoff chain length.
func (p *Pool[T]) Chain() int { return p.chain }

// Cap returns the retained-block space bound beyond live blocks:
// threads × 2B + slots × B.
func (p *Pool[T]) Cap() int {
	return len(p.handles)*2*p.chain + len(p.shared)*p.chain
}

// SetTracer attaches a flight recorder: shared-pool handoffs, drops, and
// guard starvation appear as anonymous rare events (the per-operation
// hit/miss events stay with the owning construction, which knows its process
// ids). Pass nil to detach. Call before operations start.
func (p *Pool[T]) SetTracer(tr *trace.Tracer) { p.tr = tr }

// Register publishes the pool's counters in reg under the plane's fixed
// metric families, labeled with the given size class:
//
//	alloc_blocks_total{class="C"}        blocks issued
//	alloc_fresh_total{class="C"}         Get misses (heap allocations)
//	alloc_free_total{class="C"}          blocks returned
//	alloc_pool_handoff_total{class="C"}  chains exchanged via the shared pool
//	alloc_drop_total{class="C"}          blocks dropped to the GC (space bound)
//	alloc_starved_total{class="C"}       guarded Gets with every candidate protected
//
// Several pools may share a class (striped instances); the registry sums
// them. The timeline scraper auto-discovers each class as series
// alloc{class="C"} (see internal/obs/timeline).
func (p *Pool[T]) Register(reg *obs.Registry, class string) {
	reg.AttachCounter(obs.Labeled("alloc_blocks_total", "class", class), p.blocks)
	reg.AttachCounter(obs.Labeled("alloc_fresh_total", "class", class), p.fresh)
	reg.AttachCounter(obs.Labeled("alloc_free_total", "class", class), p.frees)
	reg.AttachCounter(obs.Labeled("alloc_pool_handoff_total", "class", class), p.handoff)
	reg.AttachCounter(obs.Labeled("alloc_drop_total", "class", class), p.drops)
	reg.AttachCounter(obs.Labeled("alloc_starved_total", "class", class), p.starved)
}

// Handle is one thread's two-stack block cache: an active stack of at most B
// blocks and one full backup chain of exactly B. Single-owner; padded so
// neighbouring handles' cursors do not share cache lines.
type Handle[T any] struct {
	p     *Pool[T]
	id    int
	headA *T // active stack head (chained through the link field)
	nA    int
	headF *T // backup chain of exactly p.chain blocks, or nil
	_     pad.CacheLinePad
}

// Cached returns the blocks currently parked in the handle's two stacks
// (diagnostic; owner-goroutine only — used for trace event payloads).
func (h *Handle[T]) Cached() int {
	n := h.nA
	if h.headF != nil {
		n += h.p.chain
	}
	return n
}

// Get returns a block: from the active stack, the backup chain, a chain
// taken from the shared pool, or — when all three are empty — a fresh
// allocation (fresh=true). O(1) plus one bounded slot scan on the take path.
func (h *Handle[T]) Get() (x *T, fresh bool) {
	p := h.p
	x = h.popLocal()
	if x == nil {
		if c := p.take(h.id); c != nil {
			h.headA, h.nA = c, p.chain
			x = h.popLocal()
		}
	}
	p.blocks.Add(h.id, 1)
	if x != nil {
		return x, false
	}
	p.fresh.Add(h.id, 1)
	return p.newFn(), true
}

// Put returns a block to the plane. O(1) plus one bounded slot scan when a
// full backup chain is handed to the shared pool; when the pool is full the
// chain is dropped to the GC — Put never waits and never allocates.
func (h *Handle[T]) Put(x *T) {
	p := h.p
	if p.reset != nil {
		p.reset(x)
	}
	p.frees.Add(h.id, 1)
	h.stash(x)
}

// stash is Put without the reset/accounting: push onto the active stack,
// rolling a full active stack into the backup slot (and the previous backup,
// if any, into the shared pool) first.
func (h *Handle[T]) stash(x *T) {
	p := h.p
	if h.nA == p.chain {
		if h.headF != nil {
			p.give(h.id, h.headF)
		}
		h.headF, h.headA, h.nA = h.headA, nil, 0
	}
	p.setNext(x, h.headA)
	h.headA = x
	h.nA++
}

// popLocal pops the active stack, flipping the backup chain in when the
// active stack is empty. Returns nil when both are empty.
func (h *Handle[T]) popLocal() *T {
	if h.nA == 0 {
		if h.headF == nil {
			return nil
		}
		h.headA, h.headF, h.nA = h.headF, nil, h.p.chain
	}
	x := h.headA
	h.headA = h.p.next(x)
	h.nA--
	h.p.setNext(x, nil)
	return x
}

// give moves a full chain into an empty shared slot: one bounded scan
// starting at the handle's stagger offset, one CAS attempt per slot. A full
// sweep with no empty slot drops the chain to the GC — that drop is the
// space bound, not a failure.
func (p *Pool[T]) give(id int, chain *T) {
	for k := 0; k < len(p.shared); k++ {
		s := &p.shared[(id+k)%len(p.shared)].P
		if s.Load() == nil && s.CompareAndSwap(nil, chain) {
			p.handoff.Add(id, 1)
			p.tr.AnonInstant(trace.KindAllocHandoff, 1, uint64(p.chain))
			return
		}
	}
	p.drops.Add(id, uint64(p.chain))
	p.tr.AnonInstant(trace.KindAllocHandoff, 2, uint64(p.chain))
}

// take removes one full chain from the shared pool: one bounded scan, one
// CAS attempt per occupied slot. Returns nil when the sweep finds nothing —
// the caller allocates fresh, so recycling is an optimization, never a wait.
func (p *Pool[T]) take(id int) *T {
	for k := 0; k < len(p.shared); k++ {
		s := &p.shared[(id+k)%len(p.shared)].P
		if c := s.Load(); c != nil && s.CompareAndSwap(c, nil) {
			p.handoff.Add(id, 1)
			p.tr.AnonInstant(trace.KindAllocHandoff, 0, uint64(p.chain))
			return c
		}
	}
	return nil
}

// Retained counts the blocks currently parked in handles and shared slots.
// Quiescent-point diagnostic (it walks chains non-atomically); the result is
// ≤ Cap() by construction — the space-bound test pins this.
func (p *Pool[T]) Retained() int {
	total := 0
	for i := range p.handles {
		h := &p.handles[i]
		total += h.nA
		if h.headF != nil {
			total += p.chain
		}
	}
	for i := range p.shared {
		for c := p.shared[i].P.Load(); c != nil; c = p.next(c) {
			total++
		}
	}
	return total
}
