package alloc

import (
	"repro/internal/obs"
	"repro/internal/pad"
)

// Shared is the plane's anonymous front: a bounded array of padded slots,
// each holding one free block, for callers with no stable thread id (e.g.
// PSimWord readers, which may run on any goroutine). It replaces sync.Pool
// for hot-path scratch with two differences that matter here: retention is
// strictly bounded (at most Slots blocks — blocks past that are dropped to
// the GC at Put time, never hoarded until the next GC cycle), and both Get
// and Put are single bounded scans with one CAS attempt per slot, so they
// are wait-free rather than best-effort-with-locks.
//
// A successful Get CAS(x, nil) transfers ownership of exactly the block the
// slot holds; an expected-value recurrence (x dropped back into the same
// slot between load and CAS) is harmless because the block's contents are
// only touched after the CAS succeeds, and the Put CAS that re-published it
// is the release fence for any writes the previous owner made.
type Shared[T any] struct {
	newFn func() *T
	slots []pad.Pointer[T]

	blocks  *obs.Counter // single-slot counters, AddAtomic (no stable writer id)
	fresh   *obs.Counter
	frees   *obs.Counter
	handoff *obs.Counter // slot exchanges (Get hits + Put parks)
	drops   *obs.Counter
}

// NewShared returns an anonymous front with the given slot count (min 2)
// and block constructor.
func NewShared[T any](slots int, newFn func() *T) *Shared[T] {
	if newFn == nil {
		panic("alloc: NewShared needs a constructor")
	}
	if slots < 2 {
		slots = 2
	}
	return &Shared[T]{
		newFn:   newFn,
		slots:   make([]pad.Pointer[T], slots),
		blocks:  obs.NewCounter(1),
		fresh:   obs.NewCounter(1),
		frees:   obs.NewCounter(1),
		handoff: obs.NewCounter(1),
		drops:   obs.NewCounter(1),
	}
}

// Get returns a parked block or, after one full unsuccessful sweep, a fresh
// one. Wait-free: one CAS attempt per occupied slot, no retries.
func (s *Shared[T]) Get() *T {
	for i := range s.slots {
		sp := &s.slots[i].P
		if x := sp.Load(); x != nil && sp.CompareAndSwap(x, nil) {
			s.blocks.AddAtomic(0, 1)
			s.handoff.AddAtomic(0, 1)
			return x
		}
	}
	s.blocks.AddAtomic(0, 1)
	s.fresh.AddAtomic(0, 1)
	return s.newFn()
}

// Put parks a block in an empty slot, or drops it to the GC after one full
// unsuccessful sweep — the bounded-retention guarantee.
func (s *Shared[T]) Put(x *T) {
	s.frees.AddAtomic(0, 1)
	for i := range s.slots {
		sp := &s.slots[i].P
		if sp.Load() == nil && sp.CompareAndSwap(nil, x) {
			s.handoff.AddAtomic(0, 1)
			return
		}
	}
	s.drops.AddAtomic(0, 1)
}

// Retained counts currently parked blocks (≤ len(slots) by construction).
func (s *Shared[T]) Retained() int {
	n := 0
	for i := range s.slots {
		if s.slots[i].P.Load() != nil {
			n++
		}
	}
	return n
}

// Register publishes the front's counters under the same alloc_* families
// as Pool.Register, labeled with the given class.
func (s *Shared[T]) Register(reg *obs.Registry, class string) {
	reg.AttachCounter(obs.Labeled("alloc_blocks_total", "class", class), s.blocks)
	reg.AttachCounter(obs.Labeled("alloc_fresh_total", "class", class), s.fresh)
	reg.AttachCounter(obs.Labeled("alloc_free_total", "class", class), s.frees)
	reg.AttachCounter(obs.Labeled("alloc_pool_handoff_total", "class", class), s.handoff)
	reg.AttachCounter(obs.Labeled("alloc_drop_total", "class", class), s.drops)
}
