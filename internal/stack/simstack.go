package stack

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/pad"
)

// SimStack is the paper's wait-free stack (§5): P-Sim employed "to
// atomically manipulate just the top of the stack". The simulated state is
// the top pointer of an immutable linked list — pushes allocate a fresh node
// in front, pops advance the pointer — so the state copy P-Sim makes each
// round is a single pointer and combining k operations costs O(k) local
// work.
type SimStack[V any] struct {
	u *core.PSim[*node[V], stackOp[V], popResult[V]]
	// per-process scratch for batched calls: the op vector handed to
	// ApplyBatch and the result slice it fills, both reused across calls so
	// the steady-state batch path allocates nothing.
	scratch []stackScratch[V]
}

type stackScratch[V any] struct {
	ops []stackOp[V]
	res []popResult[V]
	_   pad.CacheLinePad
}

// stackOp is the announced operation descriptor: push carries a value, pop
// does not.
type stackOp[V any] struct {
	push bool
	v    V
}

// popResult carries a pop's response; push responses are ignored.
type popResult[V any] struct {
	v  V
	ok bool
}

// SimOption configures a SimStack.
type SimOption func(*simCfg)

type simCfg struct {
	boLower, boUpper int
	paddedAct        bool
}

// WithBackoff bounds the adaptive backoff window (upper 0 disables).
func WithBackoff(lower, upper int) SimOption {
	return func(c *simCfg) { c.boLower, c.boUpper = lower, upper }
}

// WithPaddedAct spreads the Act vector one word per cache line.
func WithPaddedAct() SimOption {
	return func(c *simCfg) { c.paddedAct = true }
}

// NewSimStack returns an empty wait-free stack shared by n processes.
func NewSimStack[V any](n int, opts ...SimOption) *SimStack[V] {
	cfg := simCfg{boLower: 1, boUpper: core.DefaultBackoffUpper}
	for _, o := range opts {
		o(&cfg)
	}
	var popts []core.PSimOption[*node[V]]
	popts = append(popts, core.WithBackoff[*node[V]](cfg.boLower, cfg.boUpper))
	if cfg.paddedAct {
		popts = append(popts, core.WithPaddedAct[*node[V]]())
	}
	apply := func(top **node[V], _ int, op stackOp[V]) popResult[V] {
		if op.push {
			*top = &node[V]{v: op.v, next: *top}
			return popResult[V]{}
		}
		t := *top
		if t == nil {
			return popResult[V]{ok: false}
		}
		*top = t.next
		return popResult[V]{v: t.v, ok: true}
	}
	return &SimStack[V]{
		u:       core.NewPSim[*node[V], stackOp[V], popResult[V]](n, nil, apply, popts...),
		scratch: make([]stackScratch[V], n),
	}
}

// Push pushes v on behalf of process id.
func (s *SimStack[V]) Push(id int, v V) {
	s.u.Apply(id, stackOp[V]{push: true, v: v})
}

// Pop pops on behalf of process id; ok is false if the stack was empty.
func (s *SimStack[V]) Pop(id int) (V, bool) {
	r := s.u.Apply(id, stackOp[V]{})
	return r.v, r.ok
}

// PushBatch pushes every value of vals, in order, on behalf of process id.
// The whole vector travels through one announce slot (in budget-sized
// chunks), so vals[len-1] ends up topmost of the run and no other process's
// operations interleave within a chunk.
func (s *SimStack[V]) PushBatch(id int, vals []V) {
	if len(vals) == 0 {
		return
	}
	sc := &s.scratch[id]
	sc.ops = sc.ops[:0]
	for _, v := range vals {
		sc.ops = append(sc.ops, stackOp[V]{push: true, v: v})
	}
	sc.res = s.u.ApplyBatch(id, sc.ops, sc.res)
}

// PopBatch pops up to want values on behalf of process id, appending them to
// out[:0] (pass a slice kept across calls for an allocation-free steady
// state; nil allocates) and returning it. Fewer than want values are
// returned when the stack ran empty at a chunk's linearization point;
// values appear in pop order (first popped first).
func (s *SimStack[V]) PopBatch(id int, want int, out []V) []V {
	out = out[:0]
	if want <= 0 {
		return out
	}
	sc := &s.scratch[id]
	sc.ops = sc.ops[:0]
	for i := 0; i < want; i++ {
		sc.ops = append(sc.ops, stackOp[V]{})
	}
	sc.res = s.u.ApplyBatch(id, sc.ops, sc.res)
	for _, r := range sc.res {
		if r.ok {
			out = append(out, r.v)
		}
	}
	return out
}

// Len walks the current top pointer and returns the stack size. It is a
// read-only snapshot, safe concurrently (the list is immutable).
func (s *SimStack[V]) Len() int {
	n := 0
	for t := s.u.Read(); t != nil; t = t.next {
		n++
	}
	return n
}

// Stats exposes the underlying P-Sim combining statistics.
func (s *SimStack[V]) Stats() core.Stats { return s.u.Stats() }

// SetRecorder attaches a distribution recorder to the underlying P-Sim
// instance. Call before any operation.
func (s *SimStack[V]) SetRecorder(rec *obs.SimRecorder) { s.u.SetRecorder(rec) }

// SetTracer attaches a flight recorder to the underlying P-Sim instance
// (see core.PSim.SetTracer). Call before any operation.
func (s *SimStack[V]) SetTracer(tr *trace.Tracer) { s.u.SetTracer(tr) }

// Instrument publishes the stack in reg under prefix (see
// core.PSim.Instrument). Call before any operation.
func (s *SimStack[V]) Instrument(reg *obs.Registry, prefix string) *obs.SimRecorder {
	return s.u.Instrument(reg, prefix)
}

// Name implements Interface.
func (s *SimStack[V]) Name() string { return "SimStack" }
