package flatcombining

import (
	"sync"
	"testing"
	"time"
)

// counterFC builds a flat-combined fetch-and-add counter.
func counterFC(rounds, cleanup int) (*FC[uint64, uint64], *uint64) {
	state := new(uint64)
	fc := New(func(_ int, arg uint64) uint64 {
		prev := *state
		*state += arg
		return prev
	}, rounds, cleanup)
	return fc, state
}

func TestFCSequential(t *testing.T) {
	fc, state := counterFC(0, 0)
	h := fc.NewHandle(0)
	if got := h.Apply(5); got != 0 {
		t.Fatalf("first = %d", got)
	}
	if got := h.Apply(3); got != 5 {
		t.Fatalf("second = %d", got)
	}
	if *state != 8 {
		t.Fatalf("state = %d", *state)
	}
}

func TestFCConcurrentExactlyOnce(t *testing.T) {
	const n, per = 8, 400
	fc, state := counterFC(0, 0)
	seen := make([]bool, n*per)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := fc.NewHandle(id)
			local := make([]uint64, 0, per)
			for k := 0; k < per; k++ {
				local = append(local, h.Apply(1))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, prev := range local {
				if prev >= n*per || seen[prev] {
					t.Errorf("bad/duplicate previous value %d", prev)
					return
				}
				seen[prev] = true
			}
		}(i)
	}
	wg.Wait()
	if *state != n*per {
		t.Fatalf("state = %d, want %d", *state, n*per)
	}
}

func TestFCStats(t *testing.T) {
	const n, per = 4, 200
	fc, _ := counterFC(0, 0)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := fc.NewHandle(id)
			for k := 0; k < per; k++ {
				h.Apply(1)
			}
		}(i)
	}
	wg.Wait()
	s := fc.Stats()
	if s.Served != n*per {
		t.Fatalf("Served = %d, want %d", s.Served, n*per)
	}
	if s.Sessions == 0 || s.AvgCombine < 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestFCCleanupAndReenlist: a frequent cleanup (every session, tiny idle
// age) unlinks idle records; owners must transparently re-enlist.
func TestFCCleanupAndReenlist(t *testing.T) {
	state := new(uint64)
	fc := New(func(_ int, arg uint64) uint64 {
		prev := *state
		*state += arg
		return prev
	}, 1, 1) // cleanup every combining session
	fc.maxIdleAge = 0 // unlink anything idle at all

	h0, h1 := fc.NewHandle(0), fc.NewHandle(1)
	for k := 0; k < 300; k++ {
		h0.Apply(1)
		h1.Apply(1)
	}
	if *state != 600 {
		t.Fatalf("state = %d, want 600 (ops lost across cleanup)", *state)
	}
}

func TestFCPublicationListGrowth(t *testing.T) {
	fc, _ := counterFC(0, 0)
	const n = 8
	handles := make([]*Handle[uint64, uint64], n)
	for i := range handles {
		handles[i] = fc.NewHandle(i)
		handles[i].Apply(1)
	}
	count := 0
	for r := fc.head.Load(); r != nil; r = r.next.Load() {
		count++
	}
	if count != n {
		t.Fatalf("publication list has %d records, want %d", count, n)
	}
}

func TestFCDefaultsApplied(t *testing.T) {
	fc := New(func(_ int, a uint64) uint64 { return a }, 0, 0)
	if fc.rounds != 3 || fc.cleanupEvery != 64 {
		t.Fatalf("defaults = rounds %d, cleanup %d", fc.rounds, fc.cleanupEvery)
	}
}

// TestFCMixedOpShapes: responses routed back to the right requester even
// when arguments differ wildly.
func TestFCMixedOpShapes(t *testing.T) {
	const n, per = 6, 200
	fc, _ := counterFC(0, 0)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := fc.NewHandle(id)
			var mySum uint64
			for k := 0; k < per; k++ {
				arg := uint64(id + 1)
				prev := h.Apply(arg)
				_ = prev
				mySum += arg
			}
			_ = mySum
		}(i)
	}
	wg.Wait()
}

// TestFCCrashedRequesterServed: a thread that published a request and then
// stopped participating (crashed) is still served by the next combiner —
// crashed NON-combiners are harmless in flat combining.
func TestFCCrashedRequesterServed(t *testing.T) {
	fc, state := counterFC(0, 0)
	crashed := fc.NewHandle(0)
	// Simulate the crash: enlist + publish a request, then never spin.
	fc.enlist(crashed.rec)
	crashed.rec.arg = 100
	crashed.rec.pending.Store(true)

	live := fc.NewHandle(1)
	if got := live.Apply(1); got != 0 && got != 100 {
		t.Fatalf("live op response %d", got)
	}
	if crashed.rec.pending.Load() {
		t.Fatal("crashed request still pending after a combining session")
	}
	if *state != 101 {
		t.Fatalf("state = %d, want 101", *state)
	}
}

// TestFCBlockedCombinerBlocksEveryone: the robustness gap the paper hammers
// (§1): while the global lock is held (a preempted/crashed combiner), NO
// other thread can make progress; progress resumes only when the lock is
// released. This is exactly the scenario the wait-free construction is
// immune to (compare TestPSimCrashedAnnouncerDoesNotBlock in core).
func TestFCBlockedCombinerBlocksEveryone(t *testing.T) {
	fc, _ := counterFC(0, 0)
	if !fc.lock.TryLock() { // the "crashed combiner" holds the global lock
		t.Fatal("could not take the lock")
	}
	done := make(chan struct{})
	go func() {
		h := fc.NewHandle(1)
		h.Apply(1)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("operation completed while the combiner lock was held")
	case <-time.After(20 * time.Millisecond):
		// expected: no progress
	}
	fc.lock.Unlock()
	select {
	case <-done:
		// progress resumed
	case <-time.After(5 * time.Second):
		t.Fatal("operation still blocked after the lock was released")
	}
}
