// Command simkvd serves the wait-free key-value store over TCP — a
// demonstration that the Sim universal construction's data structures
// compose into a realistic service: no operation ever takes a lock, so one
// stalled client cannot block another.
//
//	simkvd -addr 127.0.0.1:7070 -clients 64 -stripes 16
//
// Talk to it with netcat:
//
//	$ printf 'PUT a 1\nGET a\nLEN\nQUIT\n' | nc 127.0.0.1 7070
//	OK NIL
//	VAL 1
//	LEN 1
//	BYE
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/kvserver"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7070", "listen address")
		clients = flag.Int("clients", 64, "max concurrent client connections")
		stripes = flag.Int("stripes", 16, "map stripes (Sim instances)")
	)
	flag.Parse()

	srv := kvserver.New(*clients, *stripes)
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simkvd:", err)
		os.Exit(1)
	}
	fmt.Printf("simkvd listening on %s (%d client slots, %d stripes)\n",
		bound, *clients, *stripes)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("simkvd: shutting down")
	srv.Close()
}
