package xatomic

import "repro/internal/pad"

// AccessCounter counts shared-memory accesses per thread, used to reproduce
// Table 1 empirically: the theoretical Sim performs O(1) shared accesses per
// operation, L-Sim O(kw), and Herlihy's classic construction O(n³s)-ish.
// Counters are padded per thread so the instrumentation itself causes no
// coherence traffic between threads, and each thread increments only its own
// slot with a plain atomic add.
//
// A nil *AccessCounter is valid and counts nothing, so constructions can be
// instrumented unconditionally with zero configuration.
type AccessCounter struct {
	slots []pad.Uint64
}

// NewAccessCounter returns a counter for n threads.
func NewAccessCounter(n int) *AccessCounter {
	return &AccessCounter{slots: make([]pad.Uint64, n)}
}

// Add records delta shared accesses by thread id. No-op on a nil receiver.
func (c *AccessCounter) Add(id int, delta uint64) {
	if c == nil {
		return
	}
	c.slots[id].V.Add(delta)
}

// Inc records one shared access by thread id. No-op on a nil receiver.
func (c *AccessCounter) Inc(id int) { c.Add(id, 1) }

// Total returns the sum over all threads. Zero on a nil receiver.
func (c *AccessCounter) Total() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for i := range c.slots {
		t += c.slots[i].V.Load()
	}
	return t
}

// PerThread returns a copy of each thread's count. Nil on a nil receiver.
func (c *AccessCounter) PerThread() []uint64 {
	if c == nil {
		return nil
	}
	out := make([]uint64, len(c.slots))
	for i := range c.slots {
		out[i] = c.slots[i].V.Load()
	}
	return out
}

// Reset zeroes every slot.
func (c *AccessCounter) Reset() {
	if c == nil {
		return
	}
	for i := range c.slots {
		c.slots[i].V.Store(0)
	}
}
