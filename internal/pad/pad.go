// Package pad provides cache-line padding helpers used by the hot shared
// structures of the Sim universal construction and its baselines.
//
// The paper (§4) lays the Act bit vector and the per-thread pool entries out
// on distinct cache lines so that a Fetch&Add by one thread does not falsely
// invalidate another thread's line. Go gives no direct control over layout,
// but padding structs to at least a cache line of separation achieves the
// same effect.
package pad

import "sync/atomic"

// CacheLineSize is the assumed size of one cache line in bytes. 64 bytes is
// correct for every x86-64 part (including the AMD Opteron 6134 "Magny
// Cours" used in the paper's evaluation) and for almost all ARM64 server
// parts.
const CacheLineSize = 64

// CacheLinePad occupies exactly one cache line. Embed it between fields that
// must not share a line.
type CacheLinePad struct{ _ [CacheLineSize]byte }

// Uint64 is a cache-line padded atomic uint64. Consecutive array elements
// never share a cache line, because the struct size is a multiple of 64 and
// the hot word sits at offset 0.
type Uint64 struct {
	V atomic.Uint64
	_ [CacheLineSize - 8]byte
}

// Uint32 is a cache-line padded atomic uint32.
type Uint32 struct {
	V atomic.Uint32
	_ [CacheLineSize - 4]byte
}

// Int64 is a cache-line padded atomic int64.
type Int64 struct {
	V atomic.Int64
	_ [CacheLineSize - 8]byte
}

// Bool is a cache-line padded atomic bool (atomic.Bool is 4 bytes).
type Bool struct {
	V atomic.Bool
	_ [CacheLineSize - 4]byte
}

// Pointer is a cache-line padded atomic pointer to T. atomic.Pointer[T] is
// always pointer-sized, so the pad amount is a compile-time constant.
type Pointer[T any] struct {
	P atomic.Pointer[T]
	_ [CacheLineSize - 8]byte
}

// Slot wraps an arbitrary value with a trailing cache line of padding.
// Because each element of a []Slot[T] is at least CacheLineSize bytes after
// the previous element's start, and the payload sits at offset 0, the
// payloads of distinct slots never share a cache line.
type Slot[T any] struct {
	Value T
	_     CacheLinePad
}
