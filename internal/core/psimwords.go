package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/backoff"
	"repro/internal/obs/trace"
	"repro/internal/pad"
	"repro/internal/xatomic"
)

// PSimWords generalizes PSimWord to simulated states of any fixed number of
// 64-bit words, completing the faithful pooled layout for the paper's full
// State struct (Algorithm 2 stores the object state `st` inline in each
// pool record, whatever its size). The memory discipline is identical to
// PSimWord — pool of n·C+1 records, 16-bit index + 48-bit stamp CAS word,
// seq1/seq2 stamps around seqlock copies — but each record carries a
// stateWords-long vector, so the copy cost per round is O(stateWords + n),
// exactly the O(s) term that motivates L-Sim for large objects.
type PSimWords struct {
	n, c   int
	words  int // applied bit-vector words
	sWords int // state words
	apply  func(st []uint64, pid int, arg uint64) uint64

	announce []pad.Uint64
	act      *xatomic.SharedBits
	pool     []wordsState
	p        xatomic.TimedWord

	threads []wordsThread
	stats   *StatsPlane

	boLower, boUpper int

	readScratch sync.Pool // *wordsThread scratch for anonymous readers
}

// wordsState is one pool record with a multi-word state vector.
type wordsState struct {
	seq1    atomic.Uint64
	applied []atomic.Uint64
	st      []atomic.Uint64
	rvals   []atomic.Uint64
	seq2    atomic.Uint64
	_       pad.CacheLinePad
}

type wordsThread struct {
	toggler   *xatomic.Toggler
	bo        *backoff.Adaptive
	poolIndex int
	inited    bool
	applied   xatomic.Snapshot
	active    xatomic.Snapshot
	diffs     xatomic.Snapshot
	st        []uint64
	rvals     []uint64
}

// NewPSimWords builds a pooled P-Sim for n threads over a state of
// len(init) words. c is the per-thread pool size (0 = default, ≥ 2). apply
// receives a PRIVATE copy of the state words it may mutate in place, the id
// of the process whose operation is applied, and that process's announced
// argument; it returns the response word.
func NewPSimWords(n, c int, init []uint64, apply func(st []uint64, pid int, arg uint64) uint64) *PSimWords {
	if n < 1 {
		panic("core: PSimWords needs n >= 1")
	}
	if len(init) < 1 {
		panic("core: PSimWords needs at least one state word")
	}
	if c == 0 {
		c = DefaultPoolPerThread
	}
	if c < 2 {
		panic("core: PSimWords needs C >= 2")
	}
	if n*c+1 > xatomic.TimedIndexMax {
		panic(fmt.Sprintf("core: n*C+1 = %d exceeds the 16-bit pool index", n*c+1))
	}
	w := xatomic.WordsFor(n)
	u := &PSimWords{
		n: n, c: c, words: w, sWords: len(init),
		apply:    apply,
		announce: make([]pad.Uint64, n),
		act:      xatomic.NewSharedBits(n),
		pool:     make([]wordsState, n*c+1),
		threads:  make([]wordsThread, n),
		stats:    NewStatsPlane(n),
		boLower:  1,
		boUpper:  DefaultBackoffUpper,
	}
	for i := range u.pool {
		u.pool[i].applied = make([]atomic.Uint64, w)
		u.pool[i].st = make([]atomic.Uint64, len(init))
		u.pool[i].rvals = make([]atomic.Uint64, n)
	}
	initRec := &u.pool[n*c]
	for i, v := range init {
		initRec.st[i].Store(v)
	}
	u.p.Store(uint16(n*c), 0)
	return u
}

// SetBackoff reconfigures the adaptive backoff bounds (0 upper disables).
// Call before any Apply.
func (u *PSimWords) SetBackoff(lower, upper int) { u.boLower, u.boUpper = lower, upper }

// SetTracer attaches a flight recorder (see PSimWord's SetTracer). Call
// before the first operation.
func (u *PSimWords) SetTracer(tr *trace.Tracer) { u.stats.Trace = tr }

// N returns the number of threads.
func (u *PSimWords) N() int { return u.n }

// StateWords returns the state width in words.
func (u *PSimWords) StateWords() int { return u.sWords }

func (u *PSimWords) thread(i int) *wordsThread {
	t := &u.threads[i]
	if !t.inited {
		t.toggler = xatomic.NewToggler(u.act, i)
		upper := u.boUpper
		if u.n == 1 {
			upper = 0 // no helper can exist: waiting is pure overhead
		}
		t.bo = backoff.NewAdaptive(u.boLower, upper)
		if tr := u.stats.Trace; tr != nil {
			id := i
			t.bo.OnGrow(func(w int) { tr.Rare(id, trace.KindBackoffGrow, uint64(w), 0) })
		}
		t.applied = xatomic.NewSnapshot(u.n)
		t.active = xatomic.NewSnapshot(u.n)
		t.diffs = xatomic.NewSnapshot(u.n)
		t.st = make([]uint64, u.sWords)
		t.rvals = make([]uint64, u.n)
		t.inited = true
	}
	return t
}

// copyState copies record src into thread scratch under the seq protocol.
func (u *PSimWords) copyState(src *wordsState, t *wordsThread) bool {
	s1 := src.seq1.Load()
	for w := 0; w < u.words; w++ {
		t.applied[w] = src.applied[w].Load()
	}
	for w := 0; w < u.sWords; w++ {
		t.st[w] = src.st[w].Load()
	}
	for k := 0; k < u.n; k++ {
		t.rvals[k] = src.rvals[k].Load()
	}
	return s1 == src.seq2.Load()
}

// Apply announces arg for process i and returns the operation's response.
func (u *PSimWords) Apply(i int, arg uint64) uint64 {
	t := u.thread(i)
	st := u.stats
	tr := st.Trace
	tt := tr.OpStart(i)

	u.announce[i].V.Store(arg)
	t.toggler.Toggle()
	t.bo.Wait()

	myWord, myMask := t.toggler.Word(), t.toggler.Mask()

	for j := 0; j < 2; j++ {
		lpRaw := u.p.LoadRaw()
		lpIdx, lpStamp := xatomic.UnpackTimed(lpRaw)
		if !u.copyState(&u.pool[lpIdx], t) {
			continue
		}
		u.act.LoadInto(t.active)
		t.applied.XorInto(t.active, t.diffs)

		if t.diffs[myWord]&myMask == 0 {
			st.Ops.Inc(i)
			st.ServedBy.Inc(i)
			tr.OpServed(i, tt)
			return t.rvals[i]
		}

		dst := &u.pool[i*u.c+t.poolIndex]
		dst.seq1.Add(1)
		combined := uint64(0)
		d := t.diffs
		for {
			k := d.BitSearchFirst()
			if k < 0 {
				break
			}
			t.rvals[k] = u.apply(t.st, k, u.announce[k].V.Load())
			d.ClearBit(k)
			combined++
		}
		for w := 0; w < u.words; w++ {
			dst.applied[w].Store(t.active[w])
		}
		for w := 0; w < u.sWords; w++ {
			dst.st[w].Store(t.st[w])
		}
		for k := 0; k < u.n; k++ {
			dst.rvals[k].Store(t.rvals[k])
		}
		dst.seq2.Add(1)

		if u.p.CompareAndSwap(lpRaw, uint16(i*u.c+t.poolIndex), lpStamp+1) {
			t.poolIndex = (t.poolIndex + 1) % u.c
			st.Ops.Inc(i)
			st.CASSuccess.Inc(i)
			st.Combined.Add(i, combined)
			var act uint64
			if tt != 0 {
				act = uint64(t.active.PopCount()) // sampled rounds only
			}
			tr.OpCommit(i, tt, combined, act)
			if j == 0 {
				t.bo.Shrink()
			}
			return t.rvals[i]
		}
		st.CASFail.Inc(i)
		tr.Instant(i, trace.KindCASFail, uint64(j), 0)
		if j == 0 {
			t.bo.Grow()
			t.bo.Wait()
		}
	}

	st.Ops.Inc(i)
	st.ServedBy.Inc(i)
	tr.OpServed(i, tt)
	for tries := 0; tries < 64; tries++ {
		lpIdx, _ := u.p.Load()
		if u.copyState(&u.pool[lpIdx], t) {
			return t.rvals[i]
		}
	}
	lpIdx, _ := u.p.Load()
	return u.pool[lpIdx].rvals[i].Load()
}

// ReadInto copies the current state into dst (len ≥ StateWords). Lock-free.
// Scratch buffers for the seqlock copy come from a sync.Pool, so steady-state
// reads allocate nothing.
func (u *PSimWords) ReadInto(dst []uint64) {
	scratch, _ := u.readScratch.Get().(*wordsThread)
	if scratch == nil {
		scratch = &wordsThread{
			applied: xatomic.NewSnapshot(u.n),
			st:      make([]uint64, u.sWords),
			rvals:   make([]uint64, u.n),
		}
	}
	for {
		lpIdx, _ := u.p.Load()
		if u.copyState(&u.pool[lpIdx], scratch) {
			copy(dst, scratch.st)
			u.readScratch.Put(scratch)
			return
		}
	}
}

// Stats returns aggregated combining statistics.
func (u *PSimWords) Stats() Stats { return u.stats.Aggregate() }

// ResetStats zeroes the statistics counters.
func (u *PSimWords) ResetStats() { u.stats.Reset() }
