package experiments

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/ingest"
	"repro/internal/workload"
)

// IngestMakers returns the ingest-pipeline contenders: one instance per
// producer batch size. One harness op call is one AppendBatch of b stamped
// events followed by a Drain of up to b events through the universal
// construction into the spool, so the measured steady state is the full
// producer→queue→spool path with the system balanced (the queue never grows
// without bound). Every thread is both a producer and a drainer, the shape a
// daemon reaches when its connection handlers drain opportunistically.
//
// The spool runs with the default segment ring bound, so retention expiry is
// part of the measured loop (old segments fall off the ring inside the same
// linearized append operations). OpsPerCall makes the harness report
// per-EVENT figures: ns/op is ns per appended event, and 1e9/ns_op is the
// sustained events/sec the issue's acceptance gate reads.
func IngestMakers(batches []int) []harness.Maker {
	var makers []harness.Maker
	for _, b := range batches {
		b := b
		makers = append(makers, func(n int) harness.Instance {
			p := ingest.New(n, ingest.Config{Batch: b})
			args := make([][]uint64, n)
			seqs := make([][]uint64, n)
			for i := range args {
				args[i] = make([]uint64, b)
				seqs[i] = make([]uint64, 0, b)
			}
			return harness.Instance{
				Name:       fmt.Sprintf("Ingest b=%d", b),
				OpsPerCall: b,
				Op: func(id int, rng *workload.RNG) {
					pay := args[id]
					for i := range pay {
						pay[i] = rng.Uint64()
					}
					seqs[id] = p.AppendBatch(id, pay, seqs[id][:0])
					p.Drain(id, b)
				},
				Trace: p.SetTracer,
			}
		})
	}
	return makers
}
