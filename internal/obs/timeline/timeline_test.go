package timeline

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/obs"
)

// fakeClock is a manually-advanced unix-nano clock for deterministic
// scrape intervals.
type fakeClock struct{ now int64 }

func (c *fakeClock) Now() int64              { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now += d.Nanoseconds() }

// testRegistry registers an aggregate "map" series plus two labeled shard
// series, mirroring what a sharded simmap publishes.
func testRegistry() (*obs.Registry, *obs.Counter, *obs.Histogram) {
	reg := obs.NewRegistry()
	ops := reg.Counter("map_ops_total", 2)
	reg.Counter("map_cas_success_total", 2)
	reg.Counter("map_cas_fail_total", 2)
	lat := reg.Histogram("map_op_latency_ns", 2)
	reg.Counter(`map_ops_total{shard="0"}`, 1)
	reg.Counter(`map_ops_total{shard="1"}`, 1)
	return reg, ops, lat
}

func TestSeriesDiscovery(t *testing.T) {
	reg, _, _ := testRegistry()
	clk := &fakeClock{now: 1}
	tl := New(reg, Config{Now: clk.Now})
	got := strings.Join(tl.SeriesNames(), ",")
	for _, want := range []string{"map", `map{shard="0"}`, `map{shard="1"}`} {
		if !strings.Contains(got, want) {
			t.Fatalf("series %q not discovered in %q", want, got)
		}
	}
	// Non-series names must not leak in.
	if strings.Contains(got, "timeline") {
		t.Fatalf("self-metrics discovered as a series: %q", got)
	}
}

func TestScrapeDeltas(t *testing.T) {
	reg, ops, lat := testRegistry()
	casFail := reg.LookupCounters("map_cas_fail_total")[0]
	casOK := reg.LookupCounters("map_cas_success_total")[0]
	clk := &fakeClock{now: time.Now().UnixNano()}
	tl := New(reg, Config{Interval: time.Second, Now: clk.Now})

	ops.Add(0, 100)
	casOK.Add(0, 90)
	casFail.Add(0, 10)
	lat.Record(0, 1000)
	tl.Scrape()

	clk.Advance(time.Second)
	ops.Add(0, 50)
	casOK.Add(0, 40)
	casFail.Add(0, 40)
	lat.Record(0, 2000)
	lat.Record(0, 4000)
	tl.Scrape()

	resp := tl.Query(0, 0, []string{"map"})
	samples := resp.Series["map"]
	if len(samples) != 2 {
		t.Fatalf("want 2 samples for map, got %d (%+v)", len(samples), resp.Series)
	}
	first, second := samples[0], samples[1]
	if first.Ops != 100 || second.Ops != 50 {
		t.Fatalf("ops deltas wrong: first=%d second=%d", first.Ops, second.Ops)
	}
	if second.OpsPerSec < 49 || second.OpsPerSec > 51 {
		t.Fatalf("ops/sec = %v, want ~50", second.OpsPerSec)
	}
	if got := second.CASFailRatio; got != 0.5 {
		t.Fatalf("cas fail ratio = %v, want 0.5 (interval delta, not lifetime)", got)
	}
	if second.LatCount != 2 || second.LatP99 < 4000 || second.LatP99 > 8191 {
		t.Fatalf("latency delta wrong: count=%d p99=%d", second.LatCount, second.LatP99)
	}
	// The labeled shard series scrape alongside, one sample per tick.
	resp = tl.Query(0, 0, nil)
	if got := len(resp.Series[`map{shard="0"}`]); got != 2 {
		t.Fatalf(`shard="0" series has %d samples, want 2`, got)
	}
}

// TestRetentionExpiry drives the sample log past its retention bound and
// checks (a) one Compact call — one ApplyBatch op-vector — expires the
// aged samples, and (b) a consumer whose cursor fell below the low
// watermark gets a counted skip, both from View.Read and the HTTP query.
func TestRetentionExpiry(t *testing.T) {
	reg, ops, _ := testRegistry()
	clk := &fakeClock{now: time.Now().UnixNano()}
	tl := New(reg, Config{
		Interval:   time.Second,
		Retain:     10 * time.Second,
		SegSamples: 9, // 3 ticks × 3 series per segment
		Now:        clk.Now,
	})
	const ticks = 30
	for i := 0; i < ticks; i++ {
		ops.Add(0, 10)
		tl.Scrape()
		clk.Advance(time.Second)
	}
	before := tl.Snapshot()
	if before.LowWater() != 0 {
		t.Fatalf("low water moved before any retention pass: %d", before.LowWater())
	}
	lwm := tl.Compact()
	if lwm == 0 {
		t.Fatal("retention pass expired nothing")
	}
	after := tl.Snapshot()
	if after.LowWater() != lwm || after.End() != before.End() {
		t.Fatalf("pass mangled the log: lwm=%d end=%d->%d", after.LowWater(), before.End(), after.End())
	}
	// A consumer resuming from offset 0 observes the expiry as a counted
	// skip, not silence.
	_, next, skipped := after.Read(0, int(after.End()), nil)
	if skipped != lwm {
		t.Fatalf("skipped = %d, want %d", skipped, lwm)
	}
	if next != after.End() {
		t.Fatalf("cursor did not reach end: %d != %d", next, after.End())
	}
	resp := tl.Query(0, 0, nil)
	if resp.Skipped != 0 {
		t.Fatalf("cursor-less query reported a skip: %d", resp.Skipped)
	}
	resp = tl.Query(0, 1, nil)
	if resp.Skipped != lwm-1 {
		t.Fatalf("query skip = %d, want %d", resp.Skipped, lwm-1)
	}
	if got := reg.Snapshot().Counters["timeline_query_skip_total"]; got != lwm-1 {
		t.Fatalf("timeline_query_skip_total = %d, want %d", got, lwm-1)
	}
}

func TestHandler(t *testing.T) {
	reg, ops, _ := testRegistry()
	clk := &fakeClock{now: time.Now().UnixNano()}
	tl := New(reg, Config{Interval: time.Second, Now: clk.Now})
	for i := 0; i < 3; i++ {
		ops.Add(0, 7)
		tl.Scrape()
		clk.Advance(time.Second)
	}
	h := Handler(tl)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/timeline?window=60s&series=map", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	var resp ResponseJSON
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rr.Body.String())
	}
	if len(resp.Series) != 1 || len(resp.Series["map"]) != 3 {
		t.Fatalf("series filter wrong: %+v", resp.Series)
	}
	if resp.Series["map"][2].Ops != 7 {
		t.Fatalf("sample ops = %d, want 7", resp.Series["map"][2].Ops)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/timeline?window=bogus", nil))
	if rr.Code != 400 {
		t.Fatalf("bad window accepted: %d", rr.Code)
	}

	rr = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/timeline", nil))
	if rr.Code != 404 {
		t.Fatalf("nil timeline should 404, got %d", rr.Code)
	}
}

func TestRecordStallAnnotation(t *testing.T) {
	reg, _, _ := testRegistry()
	clk := &fakeClock{now: time.Now().UnixNano()}
	tl := New(reg, Config{Interval: time.Second, Now: clk.Now})
	tl.Scrape()
	tl.RecordStall(3, 4096)
	resp := tl.Query(0, 0, nil)
	if len(resp.Annotations) != 1 {
		t.Fatalf("want 1 annotation, got %+v", resp.Annotations)
	}
	a := resp.Annotations[0]
	if a.Kind != "watchdog_stall" || a.Ref != "pid 3" || a.Value != 4096 {
		t.Fatalf("stall annotation wrong: %+v", a)
	}
}

func TestStartStop(t *testing.T) {
	reg, ops, _ := testRegistry()
	tl := New(reg, Config{Interval: 10 * time.Millisecond, Retain: time.Minute})
	tl.Start()
	defer tl.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		ops.Add(0, 1)
		if v := tl.Snapshot(); v.End() >= 6 { // two ticks × three series
			tl.Stop()
			tl.Stop() // idempotent
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background scraper appended no samples within 2s")
}

// planeBlock is a minimal memory-plane block for the alloc-series tests.
type planeBlock struct{ next *planeBlock }

// TestAllocSeriesDiscovery checks that a registered memory-plane size class
// shows up as an alloc{class=...} series and that its families land in the
// mapped sample columns (Ops = blocks, Combined = fresh).
func TestAllocSeriesDiscovery(t *testing.T) {
	reg, _, _ := testRegistry()
	pool := alloc.NewPool(1, alloc.Config[planeBlock]{
		New:     func() *planeBlock { return &planeBlock{} },
		Next:    func(b *planeBlock) *planeBlock { return b.next },
		SetNext: func(b, nx *planeBlock) { b.next = nx },
	})
	pool.Register(reg, "fmul_state")
	clk := &fakeClock{now: 1}
	tl := New(reg, Config{Interval: time.Second, Now: clk.Now})

	want := `alloc{class="fmul_state"}`
	idx := -1
	for i, name := range tl.SeriesNames() {
		if name == want {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("series %q not discovered in %v", want, tl.SeriesNames())
	}

	h := pool.Handle(0)
	x, fresh := h.Get() // miss: counts one block and one fresh
	if !fresh {
		t.Fatal("first Get must be fresh")
	}
	h.Put(x)
	h.Get() // hit: one more block, no fresh
	clk.Advance(time.Second)
	tl.Scrape()

	v := tl.Snapshot()
	evs, _, _ := v.Read(v.LowWater(), v.Len(), nil)
	var got Sample
	found := false
	for _, s := range evs {
		if s.Kind == KindSample && int(s.Series) == idx {
			got, found = s, true
		}
	}
	if !found {
		t.Fatal("no scrape sample for the alloc series")
	}
	if got.Ops != 2 {
		t.Fatalf("Ops (blocks issued) = %d, want 2", got.Ops)
	}
	if got.Combined != 1 {
		t.Fatalf("Combined (fresh allocations) = %d, want 1", got.Combined)
	}
}
