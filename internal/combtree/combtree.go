// Package combtree implements the classic software combining tree of Yew,
// Tzeng and Lawrie (the paper's reference [30] for distributing hot-spot
// accesses), in the form popularized by Herlihy and Shavit's textbook: a
// binary tree whose leaves are shared by pairs of threads; requests meet at
// internal nodes, merge, and a single winner carries the combined batch to
// the root, then distributes responses on the way back down.
//
// The tree is BLOCKING (threads wait for their combining partner), which is
// exactly the contrast the wait-free Sim draws against prior combining
// techniques: combining amortizes the hot spot but a preempted partner
// stalls its whole subtree. It serves as an additional Figure 2 baseline.
//
// The combined operation is any monoid over uint64: combine merges two
// request batches, apply folds a batch into the state and the PREVIOUS
// state is each batch's response seed (fetch-and-phi).
package combtree

import (
	"sync"
)

type status int

const (
	idle status = iota
	first
	second
	result
	root
)

// node is one combining-tree node, guarded by its mutex/cond.
type node struct {
	mu     sync.Mutex
	cond   *sync.Cond
	status status
	locked bool
	parent *node

	firstValue  uint64 // batch deposited by the first-arriving thread
	secondValue uint64 // batch deposited by the second
	resultValue uint64 // response seed handed back to the second

	state uint64 // root only: the shared object's state
}

func newNode(parent *node) *node {
	n := &node{parent: parent}
	n.cond = sync.NewCond(&n.mu)
	return n
}

// Tree is a combining tree shared by n threads computing a fetch-and-phi.
type Tree struct {
	combine func(a, b uint64) uint64  // merge two batches
	apply   func(st, d uint64) uint64 // fold a batch into the state
	leaf    []*node                   // thread i enters at leaf[i/2]
	depth   int
}

// New builds a combining tree for n threads with the given monoid and
// initial state. combine must be associative and apply(apply(s,a),b) must
// equal apply(s, combine(a,b)) — the condition under which batching is
// invisible to callers.
func New(n int, init uint64, combine func(a, b uint64) uint64, apply func(st, d uint64) uint64) *Tree {
	if n < 1 {
		panic("combtree: n must be >= 1")
	}
	leaves := (n + 1) / 2
	// Round leaves up to a power of two for a complete tree.
	width := 1
	for width < leaves {
		width *= 2
	}
	nodes := make([]*node, 2*width-1)
	nodes[0] = newNode(nil)
	nodes[0].status = root
	nodes[0].state = init
	for i := 1; i < len(nodes); i++ {
		nodes[i] = newNode(nodes[(i-1)/2])
	}
	t := &Tree{
		combine: combine,
		apply:   apply,
		leaf:    nodes[len(nodes)-width:],
	}
	return t
}

// NewFetchAdd returns a combining-tree fetch-and-add object.
func NewFetchAdd(n int, init uint64) *Tree {
	return New(n, init,
		func(a, b uint64) uint64 { return a + b },
		func(st, d uint64) uint64 { return st + d })
}

// NewFetchMultiply returns a combining-tree Fetch&Multiply object (the
// Figure 2 benchmark operation).
func NewFetchMultiply(n int, init uint64) *Tree {
	return New(n, init,
		func(a, b uint64) uint64 { return a * b },
		func(st, d uint64) uint64 { return st * d })
}

// Apply folds value into the shared state and returns the state the
// caller's operation observed (its fetch-and-phi response).
func (t *Tree) Apply(id int, value uint64) uint64 {
	myLeaf := t.leaf[(id/2)%len(t.leaf)]

	// Phase 1 — precombining: climb while winning the first slot; stop at
	// the node where we are second (or at the root). Becoming second LOCKS
	// the node, so the first's combining phase below cannot pass it before
	// our batch is deposited.
	stop := myLeaf
	var path []*node // nodes where this thread is FIRST, bottom-up
	for {
		nd := stop
		nd.mu.Lock()
		for nd.locked {
			nd.cond.Wait() // an episode is still draining through this node
		}
		switch nd.status {
		case idle:
			nd.status = first
			nd.mu.Unlock()
			path = append(path, nd)
			stop = nd.parent
			continue
		case first:
			nd.status = second
			nd.locked = true
			nd.mu.Unlock()
		case root:
			nd.mu.Unlock()
		default:
			nd.mu.Unlock()
			panic("combtree: corrupt precombine state")
		}
		break
	}

	// Phase 2 — combining: revisit the FIRST nodes bottom-up, locking each
	// and folding in a waiting second's batch, if one arrived.
	combined := value
	for _, nd := range path {
		nd.mu.Lock()
		for nd.locked {
			nd.cond.Wait()
		}
		nd.locked = true
		nd.firstValue = combined
		if nd.status == second {
			combined = t.combine(combined, nd.secondValue)
		}
		nd.mu.Unlock()
	}

	// Phase 3 — operation at the stop node.
	var prior uint64
	nd := stop
	nd.mu.Lock()
	switch nd.status {
	case root:
		prior = nd.state
		nd.state = t.apply(nd.state, combined)
		nd.mu.Unlock()
	case second:
		// Deposit our batch, release the lock we took in precombine so the
		// first thread's combine can fold it in, then wait for our response.
		// We do NOT return here: the batch we deposited included operations
		// combined from OUR lower path, and those nodes (locked during our
		// combine phase) are drained by the distribution loop below.
		nd.secondValue = combined
		nd.locked = false
		nd.cond.Broadcast()
		for nd.status != result {
			nd.cond.Wait()
		}
		prior = nd.resultValue
		nd.status = idle
		nd.locked = false // the first's combine locked the node; release it
		nd.cond.Broadcast()
		nd.mu.Unlock()
	default:
		nd.mu.Unlock()
		panic("combtree: corrupt stop-node state")
	}

	// Phase 4 — distribution: walk back down the FIRST nodes, releasing
	// each and handing a waiting second its response seed. Our own batch
	// linearizes before the second's, so the second's prior is our prior
	// with OUR contribution at that node applied.
	for i := len(path) - 1; i >= 0; i-- {
		nd := path[i]
		nd.mu.Lock()
		switch nd.status {
		case first:
			nd.status = idle
			nd.locked = false
		case second:
			nd.resultValue = t.apply(prior, nd.firstValue)
			nd.status = result
		}
		nd.cond.Broadcast()
		nd.mu.Unlock()
	}
	return prior
}

// Read returns the current state (exact only at quiescence).
func (t *Tree) Read() uint64 {
	rt := t.leaf[0]
	for rt.parent != nil {
		rt = rt.parent
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.state
}
