package spin

import (
	"runtime"
	"sync/atomic"
)

// TTAS is a test-and-test-and-set lock. Flat combining (Hendler, Incze,
// Shavit, Tzafrir, SPAA'10) uses exactly this shape of global lock: threads
// first read the lock word (hitting in cache while it is held) and attempt
// the atomic exchange only when it reads free. TryLock never blocks, which
// is what the flat-combining fast path needs.
type TTAS struct {
	held atomic.Bool
}

// TryLock attempts one acquisition and reports success.
func (l *TTAS) TryLock() bool {
	return !l.held.Load() && l.held.CompareAndSwap(false, true)
}

// Lock spins until the lock is acquired.
func (l *TTAS) Lock() {
	for {
		if l.TryLock() {
			return
		}
		for l.held.Load() {
			runtime.Gosched()
		}
	}
}

// Unlock releases the lock.
func (l *TTAS) Unlock() {
	l.held.Store(false)
}

// Locked reports whether the lock is currently held (racy; for the
// flat-combining waiter loop and for stats).
func (l *TTAS) Locked() bool { return l.held.Load() }
