package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/backoff"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/pad"
	"repro/internal/xatomic"
)

// PSimWord is the faithful pooled P-Sim of Algorithms 2 and 3, specialised
// to a word-sized simulated state (the Fetch&Multiply object of Figure 2 is
// exactly that; SimStack's top pointer also fits one word).
//
// It reproduces the paper's memory discipline precisely:
//
//   - a shared Pool of n·C+1 State records, thread i owning records
//     [i·C, (i+1)·C) and rotating through them after successful publishes
//     (the extra record n·C holds the initial state);
//   - the single shared variable P packing a 16-bit pool index and a 48-bit
//     timestamp into one CAS word (xatomic.TimedWord), standing in for the
//     LL/SC object;
//   - seq1/seq2 consistency stamps: a writer increments seq1 before and seq2
//     after mutating its record, and readers copy seq1 first, the payload,
//     then seq2, accepting only matching stamps (Algorithm 3 line 11). Each
//     record's stamp pair increases monotonically with every reuse, so a
//     record reused by its owner can never reproduce an already-seen pair
//     and a torn copy is always detected.
//
// Batching: each announce register is a fixed vector of WordBatchBudget
// argument words plus a count; ApplyBatch announces up to a budget's worth of
// operations per toggle and a combining round applies every announced
// process's whole vector in announce order. Unlike the generic variant's
// announce boxes, the fixed registers need no protection protocol at all: a
// combiner racing an owner's re-announcement may copy a torn mixture of two
// vectors, but a re-announcement implies the owner's previous vector
// completed, which implies an intervening successful publish — the
// combiner's CAS is already doomed and the garbage round is discarded, the
// same staleness argument that lets the paper read announce words unchecked.
// The per-process batch-response rows ride inside the pool records under the
// existing seq1/seq2 stamps.
//
// Every shared field is accessed through sync/atomic, which makes the
// seqlock race-detector-clean while keeping the exact access pattern of the
// paper's C code.
type PSimWord struct {
	n, c  int
	words int // bit-vector words for n bits
	apply func(st, arg uint64) (newSt, rv uint64)

	announce []wordAnnounce // Announce[i]: single-writer argument vectors
	act      *xatomic.SharedBits
	pool     []wordState
	// p is the LL/SC-shaped shared variable: the paper-exact packed
	// ⟨index, stamp⟩ word below the 2^48 wrap horizon, the atomic-copy
	// cell variant at or above it (xatomic.NewTimedVar).
	p xatomic.TimedVar

	threads []wordThread
	stats   *StatsPlane

	boLower, boUpper int

	// readScratch is the memory plane's anonymous front: bounded scratch
	// recycling for Read()ers with no process id (replaces sync.Pool — same
	// zero-alloc steady state, but retention is strictly bounded).
	readScratch *alloc.Shared[wordThread]
}

// WordBatchBudget is the announce-vector capacity of the word-specialised
// variants: ApplyBatch splits longer vectors into budget-sized chunks. Fixed
// (unlike PSim's WithBatchBudget) because the argument registers and the
// batch-response rows in every pool record are statically sized by it.
const WordBatchBudget = 8

// wordAnnounce is one process's announce register: a count and up to
// WordBatchBudget argument words, padded so announcing processes do not
// share lines. Single-writer; combiners read it unchecked (see the type
// comment for why torn reads are harmless).
type wordAnnounce struct {
	cnt  atomic.Uint64
	args [WordBatchBudget]atomic.Uint64
	_    pad.CacheLinePad
}

// wordState is one pool record: struct State of Algorithm 2 for a word-sized
// object. seq1/seq2 bracket the payload exactly as in the paper; the record
// is padded so distinct threads' records do not share lines. bn[k]/brv rows
// carry process k's batch responses when its last served vector had more
// than one element (bn[k] = 0 otherwise — single-op traffic answers through
// rvals and pays only the n count words per copy).
type wordState struct {
	seq1    atomic.Uint64
	applied []atomic.Uint64 // the applied bit vector, WordsFor(n) words
	st      atomic.Uint64   // the simulated object's state
	rvals   []atomic.Uint64 // per-process return values
	bn      []atomic.Uint64 // per-process batch-response counts
	brv     []atomic.Uint64 // batch responses, flat n×WordBatchBudget rows
	seq2    atomic.Uint64
	_       pad.CacheLinePad
}

type wordThread struct {
	toggler   *xatomic.Toggler
	bo        *backoff.Adaptive
	poolIndex int // rotates over [0, C)
	inited    bool
	// scratch buffers for the copied state
	applied xatomic.Snapshot
	active  xatomic.Snapshot
	diffs   xatomic.Snapshot
	rvals   []uint64
	bn      []uint64
	brv     []uint64 // flat n×WordBatchBudget rows
}

// DefaultPoolPerThread is the paper's "small constant C > 1" — the number of
// State records each thread rotates through. Larger C widens the reuse
// distance that protects the fallback read.
const DefaultPoolPerThread = 8

// DefaultUpdateHorizon is the successful-update count NewPSimWord assumes
// over an instance's lifetime: generous (at 10^7 publishes/sec it is over a
// day of non-stop updates) yet far below the 2^48 stamp-wrap bound, so the
// default instance keeps the paper-exact packed-word CAS. Deployments whose
// horizon reaches xatomic.TimedStampMax get the wrap-safe atomic-copy
// variant via NewPSimWordHorizon.
const DefaultUpdateHorizon = 1 << 40

// NewPSimWord builds a pooled P-Sim for n threads with C records per thread
// (C ≥ 2; pass 0 for DefaultPoolPerThread), initial state init, and the
// sequential transition function apply. The shared ⟨index, stamp⟩ variable
// assumes DefaultUpdateHorizon successful updates; use NewPSimWordHorizon
// for longer-lived instances.
func NewPSimWord(n, c int, init uint64, apply func(st, arg uint64) (uint64, uint64)) *PSimWord {
	return NewPSimWordHorizon(n, c, init, apply, DefaultUpdateHorizon)
}

// NewPSimWordHorizon is NewPSimWord with an explicit successful-update
// horizon. While horizon stays below xatomic.TimedStampMax the shared
// variable is the paper's packed ⟨pool index, 48-bit stamp⟩ CAS word, whose
// ABA argument holds for up to 2^48 updates; at or beyond the bound the
// instance selects the wrap-safe LL/SC built from atomic-copy cells
// (xatomic.TimedSafe, per arXiv 1911.09671), trading one small allocation
// per successful publish for unconditional soundness. The choice is made
// once, here — the hot path pays no per-operation dispatch beyond the
// interface call either way.
func NewPSimWordHorizon(n, c int, init uint64, apply func(st, arg uint64) (uint64, uint64), horizon uint64) *PSimWord {
	if n < 1 {
		panic("core: PSimWord needs n >= 1")
	}
	if c == 0 {
		c = DefaultPoolPerThread
	}
	if c < 2 {
		panic("core: PSimWord needs C >= 2 (the paper's 'small constant C > 1')")
	}
	if n*c+1 > xatomic.TimedIndexMax {
		panic(fmt.Sprintf("core: n*C+1 = %d exceeds the 16-bit pool index", n*c+1))
	}
	w := xatomic.WordsFor(n)
	u := &PSimWord{
		n: n, c: c, words: w,
		apply:    apply,
		announce: make([]wordAnnounce, n),
		act:      xatomic.NewSharedBits(n),
		pool:     make([]wordState, n*c+1),
		threads:  make([]wordThread, n),
		stats:    NewStatsPlane(n),
		boLower:  1,
		boUpper:  DefaultBackoffUpper,
	}
	for i := range u.pool {
		u.pool[i].applied = make([]atomic.Uint64, w)
		u.pool[i].rvals = make([]atomic.Uint64, n)
		u.pool[i].bn = make([]atomic.Uint64, n)
		u.pool[i].brv = make([]atomic.Uint64, n*WordBatchBudget)
	}
	// Record n·C carries the initial state (P = {n·C, 0} in Algorithm 2).
	u.pool[n*c].st.Store(init)
	u.p = xatomic.NewTimedVar(horizon)
	u.p.Store(uint16(n*c), 0)
	u.readScratch = alloc.NewShared(readScratchSlots, func() *wordThread {
		return &wordThread{
			applied: xatomic.NewSnapshot(n),
			rvals:   make([]uint64, n),
			bn:      make([]uint64, n),
			brv:     make([]uint64, n*WordBatchBudget),
		}
	})
	u.stats.AttachAllocPool("scratch", u.readScratch)
	return u
}

// readScratchSlots bounds the parked Read() scratch records of the word
// variants' anonymous fronts (more simultaneous anonymous readers than this
// pay a fresh allocation; fewer keep the zero-alloc steady state).
const readScratchSlots = 4

// SetBackoff reconfigures the adaptive backoff bounds (0 upper disables).
// Call before any Apply.
func (u *PSimWord) SetBackoff(lower, upper int) { u.boLower, u.boUpper = lower, upper }

// SetTracer attaches a flight recorder (see PSim's SetTracer). The pooled
// variant recycles through its fixed pool rather than a ring, so recycling
// events do not appear; rounds, serves, publish failures, and backoff
// growth do. Call before the first operation.
func (u *PSimWord) SetTracer(tr *trace.Tracer) { u.stats.Trace = tr }

// N returns the number of threads.
func (u *PSimWord) N() int { return u.n }

func (u *PSimWord) thread(i int) *wordThread {
	t := &u.threads[i]
	if !t.inited {
		t.toggler = xatomic.NewToggler(u.act, i)
		upper := u.boUpper
		if u.n == 1 {
			upper = 0 // no helper can exist: waiting is pure overhead
		}
		t.bo = backoff.NewAdaptive(u.boLower, upper)
		if tr := u.stats.Trace; tr != nil {
			id := i
			t.bo.OnGrow(func(w int) { tr.Rare(id, trace.KindBackoffGrow, uint64(w), 0) })
		}
		t.applied = xatomic.NewSnapshot(u.n)
		t.active = xatomic.NewSnapshot(u.n)
		t.diffs = xatomic.NewSnapshot(u.n)
		t.rvals = make([]uint64, u.n)
		t.bn = make([]uint64, u.n)
		t.brv = make([]uint64, u.n*WordBatchBudget)
		t.inited = true
	}
	return t
}

// copyState copies pool record src into thread-local scratch under the
// seq1/seq2 protocol and reports whether the copy is consistent. A count
// read mid-rewrite may be garbage, so it is clamped before indexing; the
// stamp check rejects the whole copy afterwards.
func (u *PSimWord) copyState(src *wordState, t *wordThread) (st uint64, ok bool) {
	s1 := src.seq1.Load() // read seq1 BEFORE the payload
	for w := 0; w < u.words; w++ {
		t.applied[w] = src.applied[w].Load()
	}
	st = src.st.Load()
	for k := 0; k < u.n; k++ {
		t.rvals[k] = src.rvals[k].Load()
		bn := src.bn[k].Load()
		if bn > WordBatchBudget {
			bn = WordBatchBudget
		}
		t.bn[k] = bn
		for j := uint64(0); j < bn; j++ {
			t.brv[k*WordBatchBudget+int(j)] = src.brv[k*WordBatchBudget+int(j)].Load()
		}
	}
	s2 := src.seq2.Load() // read seq2 AFTER the payload
	return st, s1 == s2
}

// Apply announces arg for process i and returns the operation's response.
// Each process id must be driven by a single goroutine.
func (u *PSimWord) Apply(i int, arg uint64) uint64 {
	t := u.thread(i)
	tt := u.stats.Trace.OpStart(i)

	an := &u.announce[i]
	an.args[0].Store(arg) // line 1: announce (a vector of one)
	an.cnt.Store(1)
	t.toggler.Toggle() // lines 2–3: toggle pi's bit in Act
	t.bo.Wait()        // line 4: backoff

	r, _ := u.applyAnnounced(i, t, tt, 1, nil)
	return r
}

// ApplyBatch announces the operation vector args for process i and returns
// the responses in args order, appended to res[:0] (pass a slice kept across
// calls for an allocation-free steady state; nil allocates). Vectors longer
// than WordBatchBudget are split into budget-sized chunks, each applied
// contiguously at its own linearization point. Progress is Apply's.
func (u *PSimWord) ApplyBatch(i int, args []uint64, res []uint64) []uint64 {
	res = res[:0]
	if len(args) == 0 {
		return res
	}
	t := u.thread(i)
	for len(args) > 0 {
		m := len(args)
		if m > WordBatchBudget {
			m = WordBatchBudget
		}
		chunk := args[:m]
		args = args[m:]
		if m == 1 {
			res = append(res, u.Apply(i, chunk[0]))
			continue
		}
		tt := u.stats.Trace.OpStart(i)
		an := &u.announce[i]
		for j, a := range chunk {
			an.args[j].Store(a)
		}
		an.cnt.Store(uint64(m))
		t.toggler.Toggle()
		t.bo.Wait()
		_, res = u.applyAnnounced(i, t, tt, m, res)
	}
	return res
}

// applyAnnounced runs the two-round combining protocol plus the fallback
// read for process i's just-announced vector of m operations. For m == 1 the
// response is returned directly (res untouched, may be nil); for m > 1 the m
// responses are appended to res. The caller has announced and toggled.
func (u *PSimWord) applyAnnounced(i int, t *wordThread, tt obs.Stamp, m int, res []uint64) (uint64, []uint64) {
	st := u.stats
	tr := st.Trace
	um := uint64(m)
	myWord, myMask := t.toggler.Word(), t.toggler.Mask()

	for j := 0; j < 2; j++ { // lines 5–27
		lpIdx, lpStamp, lpTag := u.p.LL() // line 6: read ⟨index, stamp⟩
		src := &u.pool[lpIdx]

		// line 8: copy the current State into local scratch;
		// line 11: consistency check via the seq stamps.
		stWord, ok := u.copyState(src, t)
		if !ok {
			continue
		}
		u.act.LoadInto(t.active)             // line 9
		t.applied.XorInto(t.active, t.diffs) // line 10

		// line 12: already applied? return the recorded responses.
		if t.diffs[myWord]&myMask == 0 {
			st.Ops.Add(i, um)
			st.ServedBy.Add(i, um)
			tr.OpServed(i, tt)
			if m == 1 {
				return t.rvals[i], res
			}
			return 0, appendRow(res, t.brv, t.bn, i)
		}

		// lines 14–21: write the successor into our own pool record.
		dst := &u.pool[i*u.c+t.poolIndex]
		dst.seq1.Add(1) // line 14: open the record (seq1 = seq2 + 1)
		slots, ops := uint64(0), uint64(0)
		d := t.diffs
		for { // lines 15–19: help everyone in diffs
			k := d.BitSearchFirst()
			if k < 0 {
				break
			}
			d.ClearBit(k)
			an := &u.announce[k]
			cnt := int(an.cnt.Load()) // line 17 (unchecked: see type comment)
			if cnt < 1 {
				cnt = 1
			} else if cnt > WordBatchBudget {
				cnt = WordBatchBudget
			}
			var rv uint64
			if cnt == 1 {
				stWord, rv = u.apply(stWord, an.args[0].Load()) // line 18
				t.bn[k] = 0
			} else {
				for q := 0; q < cnt; q++ {
					stWord, rv = u.apply(stWord, an.args[q].Load())
					t.brv[k*WordBatchBudget+q] = rv
				}
				t.bn[k] = uint64(cnt)
			}
			t.rvals[k] = rv
			slots++
			ops += uint64(cnt)
		}
		for w := 0; w < u.words; w++ { // line 20: applied ← active
			dst.applied[w].Store(t.active[w])
		}
		dst.st.Store(stWord)
		for k := 0; k < u.n; k++ {
			dst.rvals[k].Store(t.rvals[k])
			dst.bn[k].Store(t.bn[k])
			for q := uint64(0); q < t.bn[k]; q++ {
				dst.brv[k*WordBatchBudget+int(q)].Store(t.brv[k*WordBatchBudget+int(q)])
			}
		}
		dst.seq2.Add(1) // line 21: close the record

		// lines 22–25: SC P to ⟨our record, stamp+1⟩ (a CAS on the packed
		// word below the wrap horizon, a cell swap above it).
		if u.p.SC(lpTag, uint16(i*u.c+t.poolIndex), lpStamp+1) {
			t.poolIndex = (t.poolIndex + 1) % u.c // line 26
			st.Ops.Add(i, um)
			st.CASSuccess.Inc(i)
			st.Combined.Add(i, ops)
			var act uint64
			if tt != 0 {
				act = uint64(t.active.PopCount()) // sampled rounds only
			}
			tr.OpCommit(i, tt, slots, act, ops)
			if j == 0 {
				t.bo.Shrink()
			}
			if m == 1 {
				return t.rvals[i], res
			}
			return 0, appendRow(res, t.brv, t.bn, i)
		}
		st.CASFail.Inc(i)
		tr.Instant(i, trace.KindCASFail, uint64(j), 0)
		if j == 0 { // line 13's compute_backoff, applied on failure
			t.bo.Grow()
			t.bo.Wait()
		}
	}

	// Lines 28–30: both rounds failed ⇒ two successful CASes intervened and
	// the second applied our operations. The paper reads Pool[P.index].rvals
	// unchecked; we retry the seq-checked read a bounded number of times
	// first (the unchecked read is only unsafe if the record is recycled
	// mid-read, which needs C further publishes by one thread — the same
	// window the paper's unchecked read tolerates).
	st.Ops.Add(i, um)
	st.ServedBy.Add(i, um)
	tr.OpServed(i, tt)
	for tries := 0; tries < 64; tries++ {
		lpIdx, _ := u.p.Load()
		src := &u.pool[lpIdx]
		if _, ok := u.copyState(src, t); ok {
			if m == 1 {
				return t.rvals[i], res
			}
			return 0, appendRow(res, t.brv, t.bn, i)
		}
	}
	lpIdx, _ := u.p.Load()
	src := &u.pool[lpIdx]
	if m == 1 {
		return src.rvals[i].Load(), res
	}
	bn := src.bn[i].Load()
	if bn > WordBatchBudget {
		bn = WordBatchBudget
	}
	for q := uint64(0); q < bn; q++ {
		res = append(res, src.brv[i*WordBatchBudget+int(q)].Load())
	}
	return 0, res
}

// appendRow appends process i's batch-response row from flat scratch to res.
func appendRow(res, brv []uint64, bn []uint64, i int) []uint64 {
	for q := uint64(0); q < bn[i]; q++ {
		res = append(res, brv[i*WordBatchBudget+int(q)])
	}
	return res
}

// Read returns the current simulated state word. Unlike Apply it may be
// called from any goroutine; it is lock-free (it retries if it observes a
// record mid-rewrite, which requires concurrent successful publishes).
// Scratch buffers for the seqlock copy come from the memory plane's
// anonymous front, so steady-state reads allocate nothing and parked scratch
// is bounded by readScratchSlots.
func (u *PSimWord) Read() uint64 {
	scratch := u.readScratch.Get()
	for {
		lpIdx, _ := u.p.Load()
		if st, ok := u.copyState(&u.pool[lpIdx], scratch); ok {
			u.readScratch.Put(scratch)
			return st
		}
	}
}

// Stats returns aggregated combining statistics.
func (u *PSimWord) Stats() Stats { return u.stats.Aggregate() }

// ResetStats zeroes the statistics counters.
func (u *PSimWord) ResetStats() { u.stats.Reset() }
