package core

import (
	"sync/atomic"
	"testing"
)

func TestHazardsAcquireValidates(t *testing.T) {
	h := NewHazards[int](2, 1)
	var src atomic.Pointer[int]
	x := new(int)
	src.Store(x)

	p, ok := h.Acquire(0, &src, 4)
	if !ok || p != x {
		t.Fatalf("Acquire = (%p, %v), want (%p, true)", p, ok, x)
	}
	if !h.Hazarded(x) {
		t.Fatal("acquired record not reported hazarded")
	}
	if h.Hazarded(new(int)) {
		t.Fatal("unrelated record reported hazarded")
	}
}

func TestHazardsAnonClaimRelease(t *testing.T) {
	h := NewHazards[int](0, 2)
	var src atomic.Pointer[int]
	x := new(int)
	src.Store(x)

	p, slot := h.AcquireAnon(&src)
	if p != x {
		t.Fatalf("AcquireAnon = %p, want %p", p, x)
	}
	if !h.Hazarded(x) {
		t.Fatal("anon-acquired record not reported hazarded")
	}
	h.ReleaseAnon(slot)
	if h.Hazarded(x) {
		t.Fatal("record still hazarded after ReleaseAnon")
	}
	// The released slot must be claimable again.
	if _, slot2 := h.AcquireAnon(&src); slot2 != slot {
		h.ReleaseAnon(slot2)
	} else {
		h.ReleaseAnon(slot2)
	}
}

// TestHazardsAnonOverflow: when every claimable slot is held (e.g. by
// preempted readers), AcquireAnon must not wait — it grows the overflow
// list, and the overflow slot participates in Hazarded scans and is
// reclaimable for later readers.
func TestHazardsAnonOverflow(t *testing.T) {
	h := NewHazards[int](0, 1)
	var src atomic.Pointer[int]
	x := new(int)
	src.Store(x)

	_, held := h.AcquireAnon(&src) // occupy the only preallocated slot
	p, over := h.AcquireAnon(&src) // must succeed via an overflow slot
	if p != x || over == held {
		t.Fatalf("overflow AcquireAnon = (%p, %p), want fresh slot for %p", p, over, x)
	}
	h.ReleaseAnon(held)
	if !h.Hazarded(x) {
		t.Fatal("record protected only by the overflow slot not reported hazarded")
	}
	h.ReleaseAnon(over)
	if h.Hazarded(x) {
		t.Fatal("record still hazarded after both releases")
	}
	// A released overflow slot is claimable again without further growth.
	if _, s := h.AcquireAnon(&src); s != held && s != over {
		t.Fatalf("slot %p is neither released slot (%p, %p)", s, held, over)
	}
}

// overflowLen counts the linked overflow slots (test-only).
func (h *Hazards[T]) overflowLen() int {
	n := 0
	for s := h.extra.Load(); s != nil; s = s.next {
		n++
	}
	return n
}

// TestHazardsAnonOverflowShrinks is the regression test for burst reclaim:
// a burst of parked readers grows the overflow list, and once the burst
// subsides the bounded per-release reclaim pass drains it back to empty —
// overflow slots no longer tax Hazarded scans forever.
func TestHazardsAnonOverflowShrinks(t *testing.T) {
	const burst = 20
	h := NewHazards[int](0, 1)
	var src atomic.Pointer[int]
	x := new(int)
	src.Store(x)

	// Burst: 1 + burst simultaneous readers; all but one land in overflow.
	slots := make([]*anonSlot[int], 0, burst+1)
	for i := 0; i < burst+1; i++ {
		_, s := h.AcquireAnon(&src)
		slots = append(slots, s)
	}
	if got := h.overflowLen(); got != burst {
		t.Fatalf("overflow len = %d after burst, want %d", got, burst)
	}

	// Release the older half; the newer half still protects x, and the
	// reclaim pass must never unlink a held slot out from under Hazarded.
	for _, s := range slots[:burst/2] {
		h.ReleaseAnon(s)
	}
	if !h.Hazarded(x) {
		t.Fatal("record lost protection while half the readers still hold it")
	}
	for _, s := range slots[burst/2:] {
		h.ReleaseAnon(s)
	}
	if h.Hazarded(x) {
		t.Fatal("record still hazarded after every release")
	}

	// Each release retires at most anonShrinkMax slots and stops early at a
	// held head, so a few slots may linger; a short tail of acquire/release
	// cycles must drain the list completely.
	for i := 0; i < burst && h.overflowLen() > 0; i++ {
		_, s := h.AcquireAnon(&src)
		h.ReleaseAnon(s)
	}
	if got := h.overflowLen(); got != 0 {
		t.Fatalf("overflow len = %d after reclaim, want 0", got)
	}

	// The table still works end to end after shrinking.
	p, s := h.AcquireAnon(&src)
	if p != x {
		t.Fatalf("AcquireAnon after shrink = %p, want %p", p, x)
	}
	h.ReleaseAnon(s)
}

func TestRingPushPopFIFO(t *testing.T) {
	h := NewHazards[int](1, 0)
	r := NewRing[int](4)
	a, b := new(int), new(int)
	r.Push(a)
	r.Push(b)
	if got := r.PopFree(h); got != a {
		t.Fatalf("PopFree = %p, want oldest %p", got, a)
	}
	if got := r.PopFree(h); got != b {
		t.Fatalf("PopFree = %p, want %p", got, b)
	}
	if got := r.PopFree(h); got != nil {
		t.Fatalf("PopFree on empty ring = %p, want nil", got)
	}
}

func TestRingPopFreeSkipsHazarded(t *testing.T) {
	h := NewHazards[int](1, 0)
	r := NewRing[int](4)
	a, b := new(int), new(int)
	var src atomic.Pointer[int]
	src.Store(a)
	if _, ok := h.Acquire(0, &src, 1); !ok {
		t.Fatal("acquire failed")
	}
	r.Push(a) // protected: must be skipped
	r.Push(b)
	if got := r.PopFree(h); got != b {
		t.Fatalf("PopFree = %p, want unprotected %p", got, b)
	}
	// a rotated to the back and stays resident while protected.
	if got := r.PopFree(h); got != nil {
		t.Fatalf("PopFree = %p, want nil (sole resident is hazarded)", got)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	// Dropping protection frees it.
	src.Store(nil)
	h.Acquire(0, &src, 1)
	if got := r.PopFree(h); got != a {
		t.Fatalf("PopFree after release = %p, want %p", got, a)
	}
}

func TestRingDropsWhenFull(t *testing.T) {
	r := NewRing[int](2)
	a, b, c := new(int), new(int), new(int)
	r.Push(a)
	r.Push(b)
	r.Push(c) // dropped: capacity bounds the working set
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	h := NewHazards[int](0, 0)
	if got := r.PopFree(h); got != a {
		t.Fatalf("PopFree = %p, want %p (c was dropped)", got, a)
	}
}
