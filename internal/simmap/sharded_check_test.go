package simmap

import (
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/check/v2"
)

// TestShardedCrossShardPerKeyLinearizable hammers a 16-shard map with
// cross-shard MSet/MGet/MDelete batches from six processes, recording every
// batch element as its own operation spanning the call's window, and
// validates the full history with the compositional per-key checker. The
// key space is wide enough that every batch straddles several shards, so
// the test exercises the shard fan-out path (group → per-shard combining
// round → scatter), not just single-shard batching. The forward engine
// makes the whole multi-thousand-op history checkable in one pass.
func TestShardedCrossShardPerKeyLinearizable(t *testing.T) {
	const (
		threads = 6
		keys    = 48
		calls   = 40
		batch   = 8
	)
	m := NewSharded[uint64, uint64](threads, 16, 2)
	if m.Shards() < 16 {
		t.Fatalf("Shards() = %d, want >= 16", m.Shards())
	}
	rec := check.NewRecorder(2 * threads * calls * batch)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seed := uint64(id)*2654435761 + 12345
			next := func() uint64 {
				seed = seed*6364136223846793005 + 1442695040888963407
				return seed >> 33
			}
			kv := make([]uint64, batch)
			vv := make([]uint64, batch)
			slots := make([]int, batch)
			for c := 0; c < calls; c++ {
				for j := range kv {
					kv[j] = next() % keys
					vv[j] = next()%1000 + 1
				}
				switch c % 3 {
				case 0:
					for j := range kv {
						slots[j] = rec.Invoke(id, check.OpMapPut, kv[j]<<32|vv[j])
					}
					prevs, existed := m.MSet(id, kv, vv)
					for j := range slots {
						rec.Return(slots[j], prevs[j], existed[j])
					}
				case 1:
					for j := range kv {
						slots[j] = rec.Invoke(id, check.OpMapGet, kv[j]<<32)
					}
					gv, gok := m.MGet(id, kv)
					for j := range slots {
						rec.Return(slots[j], gv[j], gok[j])
					}
				default:
					for j := range kv {
						slots[j] = rec.Invoke(id, check.OpMapDel, kv[j]<<32)
					}
					prevs, existed := m.MDelete(id, kv)
					for j := range slots {
						rec.Return(slots[j], prevs[j], existed[j])
					}
				}
			}
		}(i)
	}
	wg.Wait()

	h := rec.Operations()
	if len(h) != threads*calls*batch {
		t.Fatalf("recorded %d operations, want %d", len(h), threads*calls*batch)
	}
	if err := v2.CheckHistory(h, v2.DefaultOptions()); err != nil {
		t.Fatalf("cross-shard history not per-key linearizable: %v", err)
	}
}

// TestShardedSmallHistoryAllEnginesAgree records a small cross-shard
// history and checks it through every engine and both partition modes: the
// forward engine, the Wing–Gong search, their cross-validating combination,
// and the whole-map single-state spec. By Herlihy–Wing locality all of
// them must return the same verdict.
func TestShardedSmallHistoryAllEnginesAgree(t *testing.T) {
	m := NewSharded[uint64, uint64](3, 16, 1)
	rec := check.NewRecorder(2 * 3 * 4)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			kv := []uint64{uint64(id), uint64(id+1) % 4, uint64(id+2) % 4, uint64(id+3) % 4}
			vv := []uint64{uint64(10 + id), uint64(20 + id), uint64(30 + id), uint64(40 + id)}
			slots := make([]int, len(kv))
			for j := range kv {
				slots[j] = rec.Invoke(id, check.OpMapPut, kv[j]<<32|vv[j])
			}
			prevs, existed := m.MSet(id, kv, vv)
			for j := range slots {
				rec.Return(slots[j], prevs[j], existed[j])
			}
			for j := range kv {
				slots[j] = rec.Invoke(id, check.OpMapGet, kv[j]<<32)
			}
			gv, gok := m.MGet(id, kv)
			for j := range slots {
				rec.Return(slots[j], gv[j], gok[j])
			}
		}(i)
	}
	wg.Wait()

	h := rec.Operations()
	for _, eng := range []v2.Engine{v2.EngineForward, v2.EngineSearch, v2.EngineBoth} {
		for _, part := range []bool{true, false} {
			opts := v2.DefaultOptions()
			opts.Engine = eng
			opts.Partition = part
			if err := v2.CheckHistory(h, opts); err != nil {
				t.Fatalf("engine=%v partition=%v: %v\nhistory:\n%s", eng, part, err, v2.FormatHistory(h))
			}
		}
	}
}

// TestShardedDisjointOwnersReadOwnWrites pins the deterministic corner of
// the contract: with one writer per key, a cross-shard MGet issued by the
// writer after its own MSet must observe exactly what it wrote.
func TestShardedDisjointOwnersReadOwnWrites(t *testing.T) {
	const threads = 4
	m := NewSharded[uint64, uint64](threads, 16, 2)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			keys := make([]uint64, 16)
			vals := make([]uint64, 16)
			for j := range keys {
				keys[j] = uint64(id*16 + j)
				vals[j] = keys[j]*7 + 1
			}
			m.MSet(id, keys, vals)
			got, ok := m.MGet(id, keys)
			for j := range keys {
				if !ok[j] || got[j] != vals[j] {
					t.Errorf("process %d key %d: got (%d,%v) want (%d,true)", id, keys[j], got[j], ok[j], vals[j])
				}
			}
		}(i)
	}
	wg.Wait()
}
