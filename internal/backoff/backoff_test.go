package backoff

import "testing"

func TestExpDoublesAndSaturates(t *testing.T) {
	b := NewExp(2, 16)
	if b.Window() != 2 {
		t.Fatalf("initial window %d, want 2", b.Window())
	}
	wants := []int{4, 8, 16, 16, 16}
	for i, w := range wants {
		b.Wait()
		if b.Window() != w {
			t.Fatalf("after wait %d: window %d, want %d", i+1, b.Window(), w)
		}
	}
}

func TestExpReset(t *testing.T) {
	b := NewExp(2, 64)
	for i := 0; i < 5; i++ {
		b.Wait()
	}
	b.Reset()
	if b.Window() != 2 {
		t.Fatalf("window after Reset = %d, want 2", b.Window())
	}
}

func TestExpClampsBadBounds(t *testing.T) {
	b := NewExp(0, 0)
	if b.Window() != 1 {
		t.Fatalf("window = %d, want clamped to 1", b.Window())
	}
	b.Wait() // must not panic or divide by zero
	b2 := NewExp(8, 2)
	if b2.Window() != 8 {
		t.Fatalf("window = %d, want min respected", b2.Window())
	}
}

func TestAdaptiveGrowShrinkBounds(t *testing.T) {
	b := NewAdaptive(2, 32)
	if b.Window() != 2 {
		t.Fatalf("initial window %d, want 2", b.Window())
	}
	for i := 0; i < 10; i++ {
		b.Grow()
	}
	if b.Window() != 32 {
		t.Fatalf("window after growth = %d, want saturated at 32", b.Window())
	}
	for i := 0; i < 10; i++ {
		b.Shrink()
	}
	if b.Window() != 2 {
		t.Fatalf("window after shrink = %d, want floor 2", b.Window())
	}
}

func TestAdaptiveDisabled(t *testing.T) {
	b := NewAdaptive(1, 0)
	if b.Enabled() {
		t.Fatal("upper=0 should disable the backoff")
	}
	before := b.Window()
	b.Grow()
	b.Shrink()
	b.Wait() // must return immediately
	if b.Window() != before {
		t.Fatal("disabled backoff changed its window")
	}
}

func TestAdaptiveEnabled(t *testing.T) {
	b := NewAdaptive(1, 100)
	if !b.Enabled() {
		t.Fatal("backoff with positive upper should be enabled")
	}
	b.Wait() // smoke: returns
}

func TestAdaptiveGrowthIsMonotonic(t *testing.T) {
	b := NewAdaptive(1, 1024)
	prev := b.Window()
	for i := 0; i < 12; i++ {
		b.Grow()
		if b.Window() < prev {
			t.Fatalf("window shrank on Grow: %d -> %d", prev, b.Window())
		}
		prev = b.Window()
	}
}
