// Command simkvd serves the wait-free key-value store over TCP — a
// demonstration that the Sim universal construction's data structures
// compose into a realistic service: no operation ever takes a lock, so one
// stalled client cannot block another.
//
//	simkvd -addr 127.0.0.1:7070 -clients 64 -stripes 16 -metrics-addr 127.0.0.1:9090
//
// Talk to it with netcat:
//
//	$ printf 'PUT a 1\nGET a\nLEN\nQUIT\n' | nc 127.0.0.1 7070
//	OK NIL
//	VAL 1
//	LEN 1
//	BYE
//
// With -metrics-addr set, the wait-free observability plane (internal/obs)
// is exported live at /metrics: Prometheus text format by default, JSON with
// ?format=json — op counts per command, publish CAS outcomes, the
// combining-degree histogram, p50/p99 operation latency, and the open
// connection gauge.
//
//	$ curl -s http://127.0.0.1:9090/metrics?format=json | head
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"

	"repro/internal/kvserver"
	"repro/internal/obs"
)

// daemon is a running simkvd: the KV server plus the optional metrics
// listener. Split from main so tests boot and tear down real instances.
type daemon struct {
	srv       *kvserver.Server
	addr      string
	metricsLn net.Listener
	metricsWG chan struct{}
}

// start boots the KV server on addr and, when metricsAddr is non-empty, the
// /metrics HTTP endpoint on metricsAddr.
func start(addr, metricsAddr string, clients, stripes int) (*daemon, error) {
	srv := kvserver.New(clients, stripes)
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, err
	}
	d := &daemon{srv: srv, addr: bound}
	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			srv.Close()
			return nil, fmt.Errorf("metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(srv.Registry()))
		d.metricsLn = ln
		d.metricsWG = make(chan struct{})
		go func() {
			defer close(d.metricsWG)
			_ = http.Serve(ln, mux) // returns when ln closes
		}()
	}
	return d, nil
}

// metricsAddr returns the bound metrics address, or "" if metrics are off.
func (d *daemon) metricsAddr() string {
	if d.metricsLn == nil {
		return ""
	}
	return d.metricsLn.Addr().String()
}

// close shuts down both listeners and waits for the serve loops to drain.
func (d *daemon) close() error {
	err := d.srv.Close()
	if d.metricsLn != nil {
		d.metricsLn.Close()
		<-d.metricsWG
	}
	return err
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7070", "listen address")
		clients     = flag.Int("clients", 64, "max concurrent client connections")
		stripes     = flag.Int("stripes", 16, "map stripes (Sim instances)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics on this address (empty disables)")
	)
	flag.Parse()

	d, err := start(*addr, *metricsAddr, *clients, *stripes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simkvd:", err)
		os.Exit(1)
	}
	fmt.Printf("simkvd listening on %s (%d client slots, %d stripes)\n",
		d.addr, *clients, *stripes)
	if ma := d.metricsAddr(); ma != "" {
		fmt.Printf("simkvd metrics on http://%s/metrics\n", ma)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("simkvd: shutting down")
	d.close()
}
