// Bank ledger: a wait-free multi-account object with a consistency
// invariant, showing the universal construction on a state that needs a
// deep copy (a slice of balances) and on operations with different shapes
// (transfers and whole-ledger audits) — the "arbitrary object" use case a
// universal construction exists for.
//
// Every audit observes a moment where the books balance EXACTLY, because
// every operation — including the audit itself — is linearized by the
// construction; no locks, and no audit can block a transfer.
//
// Run with: go run ./examples/bankaccount
package main

import (
	"fmt"
	"sync"

	simuc "repro"
)

const (
	accounts   = 16
	initialBal = 1_000
)

// ledger is the sequential object's state.
type ledger struct {
	balance []int64
}

// op is the announced operation descriptor.
type op struct {
	kind     byte // 't' transfer, 'a' audit
	from, to int
	amount   int64
}

// result carries an operation's response.
type result struct {
	ok    bool  // transfer: sufficient funds
	total int64 // audit: sum of all balances
}

func main() {
	const n = 8
	const opsPer = 2_000

	apply := func(st *ledger, _ int, o op) result {
		switch o.kind {
		case 't':
			if st.balance[o.from] < o.amount {
				return result{ok: false}
			}
			st.balance[o.from] -= o.amount
			st.balance[o.to] += o.amount
			return result{ok: true}
		case 'a':
			var sum int64
			for _, b := range st.balance {
				sum += b
			}
			return result{total: sum}
		}
		return result{}
	}

	clone := func(l ledger) ledger {
		return ledger{balance: append([]int64(nil), l.balance...)}
	}

	init := ledger{balance: make([]int64, accounts)}
	for i := range init.balance {
		init.balance[i] = initialBal
	}
	bank := simuc.NewUniversal(n, init, apply, clone, simuc.Config{})

	var wg sync.WaitGroup
	var audits, badAudits, transfers, declined sync.Map
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seed := uint64(id)*2654435761 + 1
			var nAudit, nBad, nXfer, nDecl int
			for k := 0; k < opsPer; k++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				if seed%10 == 0 { // 10% audits
					r := bank.Apply(id, op{kind: 'a'})
					nAudit++
					if r.total != accounts*initialBal {
						nBad++
					}
				} else {
					from := int(seed % accounts)
					to := int((seed >> 8) % accounts)
					amt := int64(seed%50) + 1
					r := bank.Apply(id, op{kind: 't', from: from, to: to, amount: amt})
					nXfer++
					if !r.ok {
						nDecl++
					}
				}
			}
			audits.Store(id, nAudit)
			badAudits.Store(id, nBad)
			transfers.Store(id, nXfer)
			declined.Store(id, nDecl)
		}(id)
	}
	wg.Wait()

	sum := func(m *sync.Map) (t int) {
		m.Range(func(_, v any) bool { t += v.(int); return true })
		return
	}
	final := bank.Read()
	var total int64
	for _, b := range final.balance {
		total += b
	}
	fmt.Printf("transfers: %d (%d declined), audits: %d, inconsistent audits: %d\n",
		sum(&transfers), sum(&declined), sum(&audits), sum(&badAudits))
	fmt.Printf("final ledger total: %d (expected %d, conserved=%v)\n",
		total, accounts*initialBal, total == accounts*initialBal)
	s := bank.Stats()
	fmt.Printf("avg ops combined per publish: %.2f\n", s.AvgHelping)
}
