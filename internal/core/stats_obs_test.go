package core

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestConcurrentStatsReads exercises the two stats planes — the aggregate
// core.Stats and the obs registry snapshots — while worker goroutines run
// (meant for -race): readers must see monotone counters, and after
// quiescence the planes must agree with each other and with the accounting
// invariant Ops == CASSuccesses + ServedByOther (every Apply completes
// either by winning its publish CAS or by being helped).
func TestConcurrentStatsReads(t *testing.T) {
	const n, perThread = 4, 2000
	reg := obs.NewRegistry()
	u := NewPSim(n, uint64(1), func(st *uint64, _ int, f uint64) uint64 {
		prev := *st
		*st *= f
		return prev
	}, WithBackoff[uint64](1, 64))
	// Sample every op so the histograms must agree exactly with the counters.
	u.Instrument(reg, "psim").SetSampleEvery(1)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last Stats
			var lastObsOps uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := u.Stats()
				if s.Ops < last.Ops || s.CASSuccesses < last.CASSuccesses ||
					s.CASFailures < last.CASFailures || s.Combined < last.Combined ||
					s.ServedByOther < last.ServedByOther {
					t.Errorf("core stats went backwards: %+v -> %+v", last, s)
					return
				}
				last = s
				snap := reg.Snapshot()
				if ops := snap.Counters["psim_ops_total"]; ops < lastObsOps {
					t.Errorf("obs ops went backwards: %d -> %d", lastObsOps, ops)
					return
				} else {
					lastObsOps = ops
				}
			}
		}()
	}

	var workers sync.WaitGroup
	for i := 0; i < n; i++ {
		workers.Add(1)
		go func(id int) {
			defer workers.Done()
			for k := 0; k < perThread; k++ {
				u.Apply(id, uint64(2*k+3))
			}
		}(i)
	}
	workers.Wait()
	close(stop)
	readers.Wait()

	s := u.Stats()
	if s.Ops != n*perThread {
		t.Fatalf("Ops = %d, want %d", s.Ops, n*perThread)
	}
	if s.Ops != s.CASSuccesses+s.ServedByOther {
		t.Fatalf("Ops (%d) != CASSuccesses (%d) + ServedByOther (%d)",
			s.Ops, s.CASSuccesses, s.ServedByOther)
	}
	// Every operation was applied exactly once, by someone.
	if s.Combined+s.ServedByOther < s.Ops || s.Combined > s.Ops {
		t.Fatalf("combine accounting implausible: %+v", s)
	}

	// The obs plane agrees with the core plane.
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"psim_ops_total":         s.Ops,
		"psim_cas_success_total": s.CASSuccesses,
		"psim_cas_fail_total":    s.CASFailures,
		"psim_combined_total":    s.Combined,
		"psim_served_by_total":   s.ServedByOther,
	} {
		if got := snap.Counters[name]; got != want {
			t.Fatalf("%s = %d, core says %d", name, got, want)
		}
	}
	lat := snap.Histograms["psim_op_latency_ns"]
	if lat.Count != s.Ops {
		t.Fatalf("latency samples = %d, want one per op (%d)", lat.Count, s.Ops)
	}
	cd := snap.Histograms["psim_combine_degree"]
	if cd.Count != s.CASSuccesses || cd.Sum != s.Combined {
		t.Fatalf("combine histogram (count=%d sum=%d) disagrees with core (%d, %d)",
			cd.Count, cd.Sum, s.CASSuccesses, s.Combined)
	}
}

// TestStatsResetAggregateRace pins the snapshot-only contract of
// StatsPlane.Reset and Aggregate (meant for -race): with per-slot writers,
// concurrent Aggregate calls, periodic Resets, and a registry Delta reader
// all running, every read must be memory-safe (atomic, never torn) and no
// aggregate or delta may exceed the number of increments ever performed —
// a reset racing a delta window must clamp at zero (obs.Registry.Delta's
// subClamp), never wrap negative.
func TestStatsResetAggregateRace(t *testing.T) {
	const n, perThread = 4, 5000
	p := NewStatsPlane(n)
	reg := obs.NewRegistry()
	p.Register(reg, "plane")

	// ceiling bounds what any counter can ever have seen (Combined gets
	// +2 per iteration, the rest +1).
	const ceiling = 2 * n * perThread

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(3)
	go func() { // aggregate reader
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := p.Aggregate()
			if s.Ops > ceiling || s.CASSuccesses > ceiling || s.Combined > ceiling {
				t.Errorf("aggregate exceeds increments performed: %+v", s)
				return
			}
		}
	}()
	go func() { // delta reader: clamped, so never a wrapped "negative"
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			d := reg.Delta()
			for name, v := range d.Counters {
				if v > ceiling {
					t.Errorf("delta %s = %d: reset race wrapped negative", name, v)
					return
				}
			}
		}
	}()
	go func() { // periodic resetter
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.Reset()
		}
	}()

	var writers sync.WaitGroup
	for i := 0; i < n; i++ {
		writers.Add(1)
		go func(id int) {
			defer writers.Done()
			for k := 0; k < perThread; k++ {
				p.Ops.Inc(id)
				p.CASSuccess.Inc(id)
				p.Combined.Add(id, 2)
			}
		}(i)
	}
	writers.Wait()
	close(stop)
	aux.Wait()

	// Quiescent reset, then quiescent writes: the plane accounts exactly.
	p.Reset()
	p.Ops.Add(0, 7)
	if s := p.Aggregate(); s.Ops != 7 || s.CASSuccesses != 0 {
		t.Fatalf("post-quiescent-reset aggregate = %+v", s)
	}
}

// TestSimRecorder: the theoretical Sim reports through the same plane.
func TestSimRecorder(t *testing.T) {
	const n, perThread = 3, 200
	reg := obs.NewRegistry()
	u := NewSim(n, 8, uint64(0), func(st uint64, _ int, op uint64) (uint64, uint64) {
		return st + op, st
	})
	u.Instrument(reg, "sim").SetSampleEvery(1)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < perThread; k++ {
				u.ApplyOp(id, uint64(k%255)+1)
			}
		}(i)
	}
	wg.Wait()

	s := u.Stats()
	snap := reg.Snapshot()
	if got := snap.Counters["sim_ops_total"]; got != s.Ops || got != n*perThread {
		t.Fatalf("sim_ops_total = %d, core %d, want %d", got, s.Ops, n*perThread)
	}
	if got := snap.Counters["sim_cas_success_total"]; got != s.CASSuccesses {
		t.Fatalf("sim_cas_success_total = %d, core %d", got, s.CASSuccesses)
	}
	if got := snap.Histograms["sim_combine_degree"]; got.Sum != s.Combined {
		t.Fatalf("combine sum = %d, core %d", got.Sum, s.Combined)
	}
	if got := snap.Histograms["sim_op_latency_ns"]; got.Count != s.Ops {
		t.Fatalf("latency samples = %d, want %d", got.Count, s.Ops)
	}
}

// TestRecorderDefaultSampling: with the default 1-in-64 sampling the counters
// stay exact while the distributions see a thin uniform sample.
func TestRecorderDefaultSampling(t *testing.T) {
	const n, perThread = 2, 1000
	reg := obs.NewRegistry()
	u := NewPSim(n, uint64(0), func(st *uint64, _ int, d uint64) uint64 {
		*st += d
		return *st
	})
	u.Instrument(reg, "psim")

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < perThread; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()

	s := u.Stats()
	snap := reg.Snapshot()
	if s.Ops != n*perThread || snap.Counters["psim_ops_total"] != s.Ops {
		t.Fatalf("counters not exact under sampling: core %d, obs %d",
			s.Ops, snap.Counters["psim_ops_total"])
	}
	lat := snap.Histograms["psim_op_latency_ns"]
	if lat.Count == 0 || lat.Count > s.Ops/16 {
		t.Fatalf("latency samples = %d, want a sparse non-empty sample of %d ops",
			lat.Count, s.Ops)
	}
}
